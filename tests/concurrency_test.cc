// The Database concurrent read path: N reader threads working through
// epoch-tagged snapshots while one writer applies randomized mutation
// batches. Every reader-observed snapshot must equal some committed
// epoch's from-scratch state — never a partial mutation — and snapshots
// taken earlier must stay unchanged while the database moves on.
//
// Sizes are deliberately modest: this binary is the core of the TSan job
// (scripts/check_tsan.sh), which runs it under ~10x instrumentation
// slowdown.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "inference/closure.h"
#include "normal/core.h"
#include "query/database.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

// A small universe that exercises every rule (mirrors incremental_test).
std::vector<Term> Universe(Dictionary* dict) {
  return {
      dict->Iri("u:a"), dict->Iri("u:b"), dict->Iri("u:c"),
      dict->Iri("u:p"), dict->Iri("u:q"), dict->Iri("u:x"),
      dict->Iri("u:y"), dict->Blank("uB1"), dict->Blank("uB2"),
  };
}

// Well-formed only: the Database contract (like the parser front door)
// excludes blank-predicate triples, and incremental maintenance matches
// the from-scratch closure only on well-formed data.
Triple RandomTriple(const std::vector<Term>& universe, Rng* rng,
                    double schema_bias) {
  for (;;) {
    Term s = universe[rng->Below(universe.size())];
    Term o = universe[rng->Below(universe.size())];
    Term p;
    if (rng->Next() % 100 < static_cast<uint64_t>(schema_bias * 100)) {
      p = vocab::kAll[rng->Below(vocab::kReservedIris)];
    } else {
      p = universe[rng->Below(universe.size())];
    }
    Triple t(s, p, o);
    if (t.IsWellFormedData()) return t;
  }
}

TEST(DatabaseSnapshot, ReflectsCommittedStateAndStaysImmutable) {
  Dictionary dict;
  Database db(&dict);
  std::vector<Term> universe = Universe(&dict);
  Rng rng(42);

  db.Insert(RandomTriple(universe, &rng, 0.5));
  std::shared_ptr<const DatabaseSnapshot> before = db.Snapshot();
  const Graph frozen_data = before->data();
  const Graph frozen_closure = before->closure();
  EXPECT_EQ(before->epoch(), db.epoch());
  EXPECT_EQ(before->closure(), RdfsClosure(before->data()));

  for (int step = 0; step < 30; ++step) {
    MutationBatch batch;
    for (int i = 0; i < 3; ++i) {
      batch.Insert(RandomTriple(universe, &rng, 0.6));
    }
    if (db.size() > 0 && rng.Chance(0.4)) {
      batch.Erase(db.graph().triples()[rng.Below(db.size())]);
    }
    db.Apply(batch);

    std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
    EXPECT_EQ(snap->epoch(), db.epoch());
    EXPECT_EQ(snap->data(), db.graph());
    EXPECT_EQ(snap->closure(), RdfsClosure(snap->data()));
  }
  // The old snapshot is frozen at its epoch forever.
  EXPECT_EQ(before->data(), frozen_data);
  EXPECT_EQ(before->closure(), frozen_closure);
}

TEST(DatabaseSnapshot, ConcurrentReadersSeeOnlyCommittedEpochs) {
  Dictionary dict;
  Database db(&dict);
  std::vector<Term> universe = Universe(&dict);
  Rng writer_rng(7);

  // Seed and publish the first snapshot from the writer thread, so
  // readers never trigger the initial closure build themselves.
  for (int i = 0; i < 10; ++i) {
    db.Insert(RandomTriple(universe, &writer_rng, 0.5));
  }
  db.Snapshot();

  constexpr int kReaders = 4;
  constexpr int kWriterSteps = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::atomic<uint64_t> snapshots_checked{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &stop, &reader_failures, &snapshots_checked,
                          r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
        // Internal consistency: the snapshot's artifacts belong to ONE
        // epoch. (Equality with the writer's from-scratch closure for
        // this epoch is verified below, on the writer thread, against
        // the recorded epoch->data history.)
        if (snap->epoch() != snap->data().epoch()) {
          reader_failures.fetch_add(1);
          break;
        }
        if (rng.Chance(0.3)) {
          // Membership answers must agree with the frozen closure.
          const Graph& cl = snap->closure();
          if (cl.size() > 0) {
            const Triple probe =
                cl.triples()[rng.Below(cl.size())];
            if (!snap->EntailsTriple(probe)) {
              reader_failures.fetch_add(1);
              break;
            }
          }
        } else {
          // Entailment of a triple drawn from the closure always holds.
          const Graph& cl = snap->closure();
          if (cl.size() > 0) {
            const Triple probe = cl.triples()[rng.Below(cl.size())];
            if (!snap->Entails(Graph({probe}))) {
              reader_failures.fetch_add(1);
              break;
            }
          }
        }
        snapshots_checked.fetch_add(1);
      }
    });
  }

  // Writer: randomized batches; record each committed epoch's data graph
  // so snapshots can be validated against from-scratch recomputation.
  std::map<uint64_t, Graph> committed;
  committed[db.epoch()] = db.graph();
  std::vector<std::shared_ptr<const DatabaseSnapshot>> observed;
  for (int step = 0; step < kWriterSteps; ++step) {
    MutationBatch batch;
    const int inserts = 1 + static_cast<int>(writer_rng.Below(3));
    for (int i = 0; i < inserts; ++i) {
      batch.Insert(RandomTriple(universe, &writer_rng, 0.6));
    }
    if (db.size() > 0 && writer_rng.Chance(0.5)) {
      batch.Erase(db.graph().triples()[writer_rng.Below(db.size())]);
    }
    db.Apply(batch);
    committed[db.epoch()] = db.graph();
    observed.push_back(db.Snapshot());
  }
  // On a loaded (or single-core) machine the writer can finish before a
  // reader completes one iteration; wait for real reader progress so the
  // liveness assertion below is meaningful.
  while (snapshots_checked.load() == 0 && reader_failures.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(snapshots_checked.load(), 0u);

  // Every snapshot the writer collected mid-stream equals the recorded
  // committed state of its epoch, closure included.
  for (const auto& snap : observed) {
    auto it = committed.find(snap->epoch());
    ASSERT_NE(it, committed.end());
    EXPECT_EQ(snap->data(), it->second);
    EXPECT_EQ(snap->closure(), RdfsClosure(it->second));
  }
}

TEST(DatabaseSnapshot, ConcurrentPremiseFreePreAnswer) {
  Dictionary dict;
  Database db(&dict);
  std::vector<Term> universe = Universe(&dict);
  Rng writer_rng(21);
  for (int i = 0; i < 12; ++i) {
    db.Insert(RandomTriple(universe, &writer_rng, 0.4));
  }
  db.Snapshot();

  // A premise-free query: one open triple over the normalized database.
  Query q;
  Term var_x = dict.Var("x");
  Term var_y = dict.Var("y");
  q.body.Insert(Triple(var_x, vocab::kType, var_y));
  q.head.Insert(Triple(var_x, vocab::kType, var_y));

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &q, &stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
        Result<std::vector<Graph>> answers = snap->PreAnswer(q);
        if (!answers.ok()) {
          failures.fetch_add(1);
          break;
        }
        // Every answer triple is entailed by the snapshot.
        for (const Graph& a : *answers) {
          for (const Triple& t : a) {
            if (!snap->closure().Contains(t)) {
              failures.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }
  for (int step = 0; step < 25; ++step) {
    MutationBatch batch;
    batch.Insert(RandomTriple(universe, &writer_rng, 0.5));
    if (db.size() > 0 && writer_rng.Chance(0.3)) {
      batch.Erase(db.graph().triples()[writer_rng.Below(db.size())]);
    }
    db.Apply(batch);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Blank-redundant data whose nf(D) actually folds: several independent
// blank components, each subsumed by a ground triple, so the lazy
// normalized() build runs the full (parallel) core engine.
void InsertFoldableData(Database* db, Dictionary* dict) {
  Term a = dict->Iri("u:a");
  for (int i = 0; i < 4; ++i) {
    Term p = dict->Iri("u:p" + std::to_string(i));
    db->Insert(Triple(a, p, dict->Iri("u:b" + std::to_string(i))));
    db->Insert(Triple(a, p, dict->FreshBlank()));
  }
}

TEST(DatabaseSnapshot, RacedNormalizedBuildsCoreExactlyOnce) {
  // N readers race the first normalized() call on a fresh snapshot: the
  // call_once slot must run the core build exactly once (observed via
  // the snapshot_nf_builds counter), and every reader must see the same
  // Graph object with the from-scratch nf(D) content.
  Dictionary dict;
  Database db(&dict);
  InsertFoldableData(&db, &dict);
  std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
  ASSERT_EQ(db.stats().snapshot_nf_builds.load(), 0u);

  constexpr int kReaders = 8;
  std::atomic<int> ready{0};
  std::vector<const Graph*> observed(kReaders, nullptr);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&snap, &ready, &observed, r] {
      // Crude barrier so the calls really race the call_once.
      ready.fetch_add(1);
      while (ready.load(std::memory_order_relaxed) < kReaders) {
        std::this_thread::yield();
      }
      observed[r] = &snap->normalized();
    });
  }
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(db.stats().snapshot_nf_builds.load(), 1u);
  const Graph expected = Core(RdfsClosure(snap->data()));
  for (int r = 0; r < kReaders; ++r) {
    ASSERT_NE(observed[r], nullptr);
    EXPECT_EQ(observed[r], observed[0]) << "reader " << r;
    EXPECT_EQ(*observed[r], expected) << "reader " << r;
  }
  // The core really folded the redundant blanks away.
  EXPECT_LT(expected.size(), RdfsClosure(snap->data()).size());
}

TEST(DatabaseSnapshot, NormalizedBuildsOncePerSnapshotEpoch) {
  Dictionary dict;
  Database db(&dict);
  InsertFoldableData(&db, &dict);
  std::shared_ptr<const DatabaseSnapshot> first = db.Snapshot();
  const Graph& first_nf = first->normalized();
  EXPECT_EQ(db.stats().snapshot_nf_builds.load(), 1u);
  // Repeated calls on the same snapshot reuse the built core.
  EXPECT_EQ(&first->normalized(), &first_nf);
  EXPECT_EQ(db.stats().snapshot_nf_builds.load(), 1u);

  db.Insert(Triple(dict.Iri("u:a"), dict.Iri("u:q"), dict.FreshBlank()));
  std::shared_ptr<const DatabaseSnapshot> second = db.Snapshot();
  ASSERT_NE(second, first);
  const Graph second_nf = second->normalized();
  EXPECT_EQ(db.stats().snapshot_nf_builds.load(), 2u);
  EXPECT_EQ(second_nf, Core(RdfsClosure(second->data())));
  // The first snapshot's normal form is frozen at its epoch.
  EXPECT_EQ(first->normalized(), Core(RdfsClosure(first->data())));
  EXPECT_EQ(db.stats().snapshot_nf_builds.load(), 2u);
}

// --------------------------------------------------------------------------
// Sharded dictionary: concurrent interning.

TEST(DictionaryConcurrency, ParallelInternOfSharedNamesConverges) {
  // N threads intern the same name set in different orders. Every
  // thread must end up with the same name -> id assignment (ids are
  // handed out once, under the owning shard's lock), and the lock-free
  // Name() must round-trip every id.
  Dictionary dict;
  constexpr int kThreads = 8;
  constexpr int kNames = 400;
  std::vector<std::string> names;
  names.reserve(kNames);
  for (int i = 0; i < kNames; ++i) {
    names.push_back("u:shared" + std::to_string(i));
  }

  std::vector<std::vector<Term>> got(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load(std::memory_order_relaxed) < kThreads) {
        std::this_thread::yield();
      }
      got[w].reserve(kNames);
      // Stagger the order per thread so shards are hit in different
      // sequences and first-interner races actually happen.
      for (int i = 0; i < kNames; ++i) {
        const int j = (i * 7 + w * 53) % kNames;
        Term t = (j % 3 == 0) ? dict.Blank(names[j]) : dict.Iri(names[j]);
        got[w].push_back(t);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Agreement: reorder each thread's terms back to canonical order.
  for (int w = 0; w < kThreads; ++w) {
    std::vector<Term> canon(kNames);
    for (int i = 0; i < kNames; ++i) {
      canon[(i * 7 + w * 53) % kNames] = got[w][i];
    }
    for (int j = 0; j < kNames; ++j) {
      EXPECT_EQ(canon[j], (j % 3 == 0) ? dict.Blank(names[j])
                                       : dict.Iri(names[j]))
          << "thread " << w << " name " << j;
      // Blank labels render with the "_:" prefix.
      EXPECT_EQ(dict.Name(canon[j]),
                (j % 3 == 0) ? "_:" + names[j] : names[j]);
    }
  }
  // Exactly one id per distinct (kind, name): no duplicates leaked.
  DictionaryStats ds = dict.Stats();
  size_t sharded = 0;
  for (size_t n : ds.shard_entries) sharded += n;
  EXPECT_EQ(sharded, ds.terms());
}

TEST(DictionaryConcurrency, LockFreeNameReadsRaceInterning) {
  // Readers hammer Name() on every id published so far while writers
  // keep interning fresh names: Name() takes no lock, so this is the
  // TSan-visible proof the id -> name table publication is race-free.
  Dictionary dict;
  std::atomic<uint32_t> published{0};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) {
      Term t = dict.Iri("u:grow" + std::to_string(i));
      published.store(t.id(), std::memory_order_release);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t reads = 0;
      while (!stop.load(std::memory_order_relaxed) || reads == 0) {
        const uint32_t hi = published.load(std::memory_order_acquire);
        if (hi == 0) continue;
        Term probe = Term::Iri(hi);
        if (dict.Name(probe).rfind("u:grow", 0) != 0) failures.fetch_add(1);
        ++reads;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dict.Name(dict.Iri("u:grow0")), "u:grow0");
}

TEST(DictionaryConcurrency, FreshBlanksDistinctAcrossThreads) {
  Dictionary dict;
  constexpr int kThreads = 8;
  constexpr int kEach = 300;
  std::vector<std::vector<Term>> fresh(kThreads);
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kEach; ++i) fresh[w].push_back(dict.FreshBlank());
    });
  }
  for (std::thread& t : threads) t.join();
  std::map<uint32_t, int> seen;
  for (int w = 0; w < kThreads; ++w) {
    for (Term t : fresh[w]) {
      EXPECT_TRUE(t.IsBlank());
      EXPECT_EQ(++seen[t.id()], 1) << "duplicate fresh blank id " << t.id();
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kEach));
}

// --------------------------------------------------------------------------
// Delta-proportional publication.

TEST(DatabaseSnapshot, PublicationSharesLeavesWithPredecessor) {
  // After a big load, a single-triple insert must republish by sharing
  // almost every spine leaf with the previous snapshot and copying only
  // the touched ones.
  Dictionary dict;
  Database db(&dict);
  std::vector<Triple> bulk;
  Term p = dict.Iri("u:p");
  for (int i = 0; i < 6000; ++i) {
    bulk.emplace_back(dict.Iri("u:s" + std::to_string(i)), p,
                      dict.Iri("u:o" + std::to_string(i % 97)));
  }
  db.InsertGraph(Graph(std::move(bulk)));
  std::shared_ptr<const DatabaseSnapshot> first = db.Snapshot();

  db.Insert(Triple(dict.Iri("u:new"), p, dict.Iri("u:o0")));
  std::shared_ptr<const DatabaseSnapshot> second = db.Snapshot();
  ASSERT_NE(second, first);

  // Direct structural check: nearly all of the second snapshot's leaves
  // are the first snapshot's leaves (pointer-identical).
  SpineSharing s = second->data().SharedLeaves(first->data());
  EXPECT_GT(s.total, 20u);  // the load is big enough to be multi-leaf
  EXPECT_GT(s.shared, 0u);
  EXPECT_LE(s.total - s.shared, 8u)  // at most ~one leaf per spine copied
      << "shared " << s.shared << " of " << s.total;

  // And the counters saw it: the second publication shared much more
  // than it copied.
  const DatabaseStats stats = db.stats();
  EXPECT_GE(stats.snapshot_publishes.load(), 2u);
  EXPECT_GT(stats.publish_leaves_shared.load(),
            stats.publish_leaves_copied.load());

  // Sharing is an optimization only: content equals a from-scratch
  // build.
  EXPECT_EQ(second->data(), db.graph());
  EXPECT_EQ(second->closure(), RdfsClosure(second->data()));
  EXPECT_EQ(first->data().size(), 6000u);
}

// --------------------------------------------------------------------------
// Cross-epoch lean cache.

// Several independent *lean* blank components (nothing to fold onto):
// each one is refuted in round 1, which is exactly what populates the
// cross-epoch LeanCache. (InsertFoldableData's components all fold, so
// they never produce cache writes.)
void InsertLeanComponents(Database* db, Dictionary* dict, int n = 4) {
  for (int i = 0; i < n; ++i) {
    db->Insert(Triple(dict->Iri("u:ls" + std::to_string(i)),
                      dict->Iri("u:lp" + std::to_string(i)),
                      dict->FreshBlank()));
  }
}

TEST(LeanCacheDatabase, CrossEpochHitsOnUnrelatedInsert) {
  // Normalize, insert a triple unrelated to every blank component, and
  // normalize again: the second core run must skip the unchanged
  // components via the shared LeanCache.
  Dictionary dict;
  Database db(&dict);
  InsertLeanComponents(&db, &dict);
  (void)db.Normalized();
  const DatabaseStats before = db.CollectStats();
  EXPECT_GT(before.lean_cache.writes, 0u);

  db.Insert(
      Triple(dict.Iri("u:lonely"), dict.Iri("u:q"), dict.Iri("u:ground")));
  const Graph& nf = db.Normalized();
  const DatabaseStats after = db.CollectStats();
  EXPECT_GT(after.lean_cache.cross_hits, 0u);
  // Bit-identical to the from-scratch normal form.
  EXPECT_EQ(nf, Core(RdfsClosure(db.graph())));
}

TEST(LeanCacheDatabase, InsertEvictsNewlyFoldableComponent) {
  // A lean component becomes foldable when its ground image appears:
  // the insert delta must evict the stale "proven lean" entry, or the
  // second normal form would wrongly keep the blank triple.
  Dictionary dict;
  Database db(&dict);
  Term a = dict.Iri("u:a");
  Term p = dict.Iri("u:p");
  Term blank = dict.FreshBlank();
  db.Insert(Triple(a, p, blank));  // lean: nothing to fold onto
  const Graph& nf1 = db.Normalized();
  EXPECT_TRUE(nf1.Contains(Triple(a, p, blank)));

  db.Insert(Triple(a, p, dict.Iri("u:b")));  // ground image appears
  const Graph& nf2 = db.Normalized();
  EXPECT_FALSE(nf2.Contains(Triple(a, p, blank)))
      << "stale lean-cache entry survived the insert";
  EXPECT_EQ(nf2, Core(RdfsClosure(db.graph())));
  EXPECT_GT(db.CollectStats().lean_cache.evictions, 0u);
}

TEST(LeanCacheDatabase, SnapshotsFeedAndConsumeTheSharedCache) {
  // A snapshot's lazy normalized() build populates the cache; the next
  // epoch's snapshot (same components) consumes it cross-epoch.
  Dictionary dict;
  Database db(&dict);
  InsertLeanComponents(&db, &dict);
  std::shared_ptr<const DatabaseSnapshot> first = db.Snapshot();
  (void)first->normalized();
  const uint64_t writes = db.CollectStats().lean_cache.writes;
  EXPECT_GT(writes, 0u);

  db.Insert(
      Triple(dict.Iri("u:lonely"), dict.Iri("u:q"), dict.Iri("u:ground")));
  std::shared_ptr<const DatabaseSnapshot> second = db.Snapshot();
  const Graph& nf = second->normalized();
  EXPECT_GT(db.CollectStats().lean_cache.cross_hits, 0u);
  EXPECT_EQ(nf, Core(RdfsClosure(second->data())));
  // The first snapshot stays frozen and correct.
  EXPECT_EQ(first->normalized(), Core(RdfsClosure(first->data())));
}

TEST(LeanCacheDatabase, LaggingSnapshotIsFencedAfterErase) {
  // Erase-stamp fencing: a snapshot published *before* an erase must
  // not consume entries written *after* it (they were proven against a
  // smaller graph). The lagging snapshot's normal form must still equal
  // its own from-scratch core.
  Dictionary dict;
  Database db(&dict);
  Term a = dict.Iri("u:a");
  Term p = dict.Iri("u:p");
  Term q = dict.Iri("u:q");
  Term blank = dict.FreshBlank();
  db.Insert(Triple(a, p, blank));
  db.Insert(Triple(a, p, dict.Iri("u:b")));  // makes the component fold
  db.Insert(Triple(a, q, dict.Iri("u:c")));
  std::shared_ptr<const DatabaseSnapshot> lagging = db.Snapshot();

  // Erase the ground image: in the *new* state the blank component is
  // lean again, and normalizing writes that (stamped) entry.
  db.Erase(Triple(a, p, dict.Iri("u:b")));
  (void)db.Normalized();

  // The lagging snapshot still contains the ground image, so its
  // component folds — a cache hit here would be unsound.
  const Graph& nf = lagging->normalized();
  EXPECT_FALSE(nf.Contains(Triple(a, p, blank)));
  EXPECT_EQ(nf, Core(RdfsClosure(lagging->data())));
}

// --- Materialized view layer vs the snapshot read path ----------------

// Views promoted on first sight, so every test below exercises the
// install/patch machinery without warm-up loops.
EvalOptions EagerViewOptions() {
  EvalOptions o;
  o.views.promote_after = 1;
  return o;
}

TEST(ViewCacheSnapshots, LaggingSnapshotStaysOnItsOwnNormalForm) {
  // A snapshot materializes a view at version V1; the writer then moves
  // on (insert patches the view, erase bumps the fence stamp). The
  // lagging snapshot must keep answering against *its* normal form —
  // bit-identical to its first run — never consuming entries written
  // for a later state.
  Dictionary dict;
  Database db(&dict, EagerViewOptions());
  Term a = dict.Iri("u:a");
  Term b = dict.Iri("u:b");
  Term c = dict.Iri("u:c");
  Term p = dict.Iri("u:p");
  db.Insert(Triple(a, p, b));
  db.Insert(Triple(b, p, c));
  db.Insert(Triple(c, p, a));
  Query q = testing::Q(&dict,
                       "head: ?X u:p ?Y .\n"
                       "body: ?X u:p ?Y .\n");

  std::shared_ptr<const DatabaseSnapshot> lagging = db.Snapshot();
  Result<std::vector<Graph>> first = lagging->PreAnswer(q);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(db.CollectStats().views.installs, 0u)
      << "snapshot miss at the current version should install the view";

  // Writer moves two states ahead and queries through the cache both
  // times (the insert patches the view, the erase fences it).
  db.Insert(Triple(c, p, dict.Iri("u:d")));
  Result<std::vector<Graph>> after_insert = db.PreAnswer(q);
  ASSERT_TRUE(after_insert.ok());
  db.Erase(Triple(a, p, b));
  Result<std::vector<Graph>> after_erase = db.PreAnswer(q);
  ASSERT_TRUE(after_erase.ok());

  // The lagging snapshot's repeat is bit-identical to its first run and
  // to from-scratch evaluation of its frozen data.
  Result<std::vector<Graph>> again = lagging->PreAnswer(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *first);
  Result<std::vector<Graph>> lagging_scratch =
      db.evaluator()->PreAnswer(q, lagging->data());
  ASSERT_TRUE(lagging_scratch.ok());
  EXPECT_EQ(*again, *lagging_scratch);

  // And the writer's cached answers match from-scratch on the current
  // graph — patch and fence left both sides sound.
  Result<std::vector<Graph>> writer_scratch =
      db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(writer_scratch.ok());
  EXPECT_EQ(*after_erase, *writer_scratch);
}

TEST(ViewCacheSnapshots, SnapshotHitSkipsItsOwnNormalFormBuild) {
  // A view materialized by the writer serves a fresh snapshot directly:
  // same answers, and the snapshot's lazy nf(D) build never runs.
  Dictionary dict;
  Database db(&dict, EagerViewOptions());
  Term a = dict.Iri("u:a");
  Term p = dict.Iri("u:p");
  db.Insert(Triple(a, p, dict.Iri("u:b")));
  db.Insert(Triple(dict.Iri("u:b"), p, dict.Iri("u:c")));
  Query q = testing::Q(&dict,
                       "head: ?X u:p ?Y .\n"
                       "body: ?X u:p ?Y .\n");

  Result<std::vector<Graph>> writer = db.PreAnswer(q);
  ASSERT_TRUE(writer.ok());
  const uint64_t builds_before =
      db.stats().snapshot_nf_builds.load(std::memory_order_relaxed);

  std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
  Result<std::vector<Graph>> from_snap = snap->PreAnswer(q);
  ASSERT_TRUE(from_snap.ok());
  EXPECT_EQ(*from_snap, *writer);
  EXPECT_EQ(db.stats().snapshot_nf_builds.load(std::memory_order_relaxed),
            builds_before)
      << "a view hit must not trigger the snapshot's lazy core build";
  EXPECT_GT(db.CollectStats().views.hits, 0u);
}

TEST(ViewCacheMaintenance, SymmetricBodyPatchKeepsSeededBlanksPinned) {
  // Regression: the semi-naive patch seeds the matcher with variables
  // already bound to concrete nf terms. When such a binding is a blank
  // node, the specialized pattern shows the matcher a *blank*, which
  // hom.h treats as an open term — the matcher could satisfy the
  // pattern by sending it elsewhere while the patched matching kept the
  // literal binding, materializing answers whose body image is not in
  // nf. A symmetric body over a variable predicate is the shape that
  // exposed it.
  Dictionary dict;
  Database db(&dict, EagerViewOptions());
  std::vector<Term> universe = Universe(&dict);
  Rng writer_rng(11);
  for (int i = 0; i < 12; ++i) {
    db.Insert(RandomTriple(universe, &writer_rng, 0.4));
  }
  std::vector<Query> queries;
  queries.push_back(testing::Q(&dict,
                               "head: ?X u:p ?Y .\n"
                               "body: ?X u:p ?Y .\n"));
  queries.push_back(testing::Q(&dict,
                               "head: ?X u:q ?Y .\n"
                               "body: ?X ?P ?Y .\n"
                               "body: ?Y ?P ?X .\n"));
  queries.push_back(testing::Q(&dict,
                               "head: _:m u:p ?Y .\n"
                               "body: ?X u:p ?Y .\n"));
  for (int step = 0; step < 25; ++step) {
    MutationBatch batch;
    batch.Insert(RandomTriple(universe, &writer_rng, 0.5));
    batch.Insert(RandomTriple(universe, &writer_rng, 0.5));
    if (db.size() > 0 && writer_rng.Chance(0.3)) {
      batch.Erase(db.graph().triples()[writer_rng.Below(db.size())]);
    }
    db.Apply(batch);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      Result<std::vector<Graph>> cached = db.PreAnswer(queries[qi]);
      Result<std::vector<Graph>> scratch =
          db.evaluator()->PreAnswer(queries[qi], db.graph());
      ASSERT_TRUE(cached.ok() && scratch.ok());
      ASSERT_EQ(*cached, *scratch) << "step=" << step << " q=" << qi
                                   << " cached=" << cached->size()
                                   << " scratch=" << scratch->size();
    }
  }
}

TEST(ViewCacheSnapshots, ConcurrentReadersStayBitIdenticalWhileWriterPatches) {
  // Reader threads answer a fixed query set through epoch-tagged
  // snapshots (view lookups, installs, fenced fallthroughs) while the
  // writer applies mutation batches and queries through the same cache
  // (Maintain patches under concurrent lookups). Every reader-observed
  // answer vector must equal from-scratch evaluation of that snapshot's
  // frozen data — bit-identical, including Skolem-minted head blanks.
  Dictionary dict;
  Database db(&dict, EagerViewOptions());
  std::vector<Term> universe = Universe(&dict);
  Rng writer_rng(11);
  for (int i = 0; i < 12; ++i) {
    db.Insert(RandomTriple(universe, &writer_rng, 0.4));
  }
  std::vector<Query> queries;
  queries.push_back(testing::Q(&dict,
                               "head: ?X u:p ?Y .\n"
                               "body: ?X u:p ?Y .\n"));
  queries.push_back(testing::Q(&dict,
                               "head: ?X u:q ?Y .\n"
                               "body: ?X ?P ?Y .\n"
                               "body: ?Y ?P ?X .\n"));
  queries.push_back(testing::Q(&dict,
                               "head: _:m u:p ?Y .\n"
                               "body: ?X u:p ?Y .\n"));
  db.Snapshot();  // publish before readers start

  constexpr int kReaders = 4;
  constexpr int kWriterSteps = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::atomic<uint64_t> answers_checked{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &queries, &stop, &reader_failures,
                          &answers_checked] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
        for (const Query& q : queries) {
          Result<std::vector<Graph>> cached = snap->PreAnswer(q);
          Result<std::vector<Graph>> scratch =
              db.evaluator()->PreAnswer(q, snap->data());
          if (!cached.ok() || !scratch.ok() || *cached != *scratch) {
            reader_failures.fetch_add(1, std::memory_order_relaxed);
          }
          answers_checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int step = 0; step < kWriterSteps; ++step) {
    MutationBatch batch;
    batch.Insert(RandomTriple(universe, &writer_rng, 0.5));
    batch.Insert(RandomTriple(universe, &writer_rng, 0.5));
    if (db.size() > 0 && writer_rng.Chance(0.3)) {
      batch.Erase(db.graph().triples()[writer_rng.Below(db.size())]);
    }
    db.Apply(batch);
    for (const Query& q : queries) {
      Result<std::vector<Graph>> writer_answers = db.PreAnswer(q);
      EXPECT_TRUE(writer_answers.ok());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(answers_checked.load(), 0u);
  const DatabaseStats stats = db.CollectStats();
  EXPECT_GT(stats.views.installs, 0u);
  EXPECT_GT(stats.views.hits, 0u);
}

TEST(DatabaseStatsAtomics, CopyAndResetBehave) {
  Dictionary dict;
  Database db(&dict);
  db.Insert(Triple(dict.Iri("a"), vocab::kType, dict.Iri("b")));
  (void)db.EntailsTriple(Triple(dict.Iri("a"), vocab::kType, dict.Iri("b")));
  DatabaseStats copy = db.stats();
  EXPECT_EQ(copy.inserts.load(), 1u);
  EXPECT_EQ(copy.membership_queries.load(), 1u);
  db.ResetStats();
  EXPECT_EQ(db.stats().inserts.load(), 0u);
}

}  // namespace
}  // namespace swdb
