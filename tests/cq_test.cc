#include "cq/cq.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "rdf/hom.h"
#include "testutil.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

using swdb::testing::Data;

TEST(Cq, FromGraphTurnsBlanksIntoVariables) {
  Dictionary dict;
  Graph g = Data(&dict, "_:X p a .\na q _:X .");
  BooleanCq q = BooleanCq::FromGraph(g);
  EXPECT_EQ(q.atoms.size(), 2u);
  EXPECT_EQ(q.Variables().size(), 1u);
  EXPECT_TRUE(q.Variables()[0].IsVar());
}

TEST(Cq, RelationalDbGroupsByPredicate) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\nc p d .\na q b .");
  RelationalDb db = RelationalDb::FromGraph(g);
  EXPECT_EQ(db.Relation(dict.Iri("p")).size(), 2u);
  EXPECT_EQ(db.Relation(dict.Iri("q")).size(), 1u);
  EXPECT_TRUE(db.Relation(dict.Iri("r")).empty());
}

TEST(Cq, BlankCycleDetection) {
  Dictionary dict;
  Term p = dict.Iri("p");
  EXPECT_FALSE(HasBlankInducedCycle(BlankChain(5, p, &dict)));
  EXPECT_TRUE(HasBlankInducedCycle(BlankCycle(4, p, &dict)));
}

TEST(Cq, BlankSelfLoopIsACycle) {
  Dictionary dict;
  Graph g = Data(&dict, "_:X p _:X .");
  EXPECT_TRUE(HasBlankInducedCycle(g));
}

TEST(Cq, ParallelBlankEdgesAreACycle) {
  Dictionary dict;
  Graph g = Data(&dict, "_:X p _:Y .\n_:X q _:Y .");
  EXPECT_TRUE(HasBlankInducedCycle(g));
}

TEST(Cq, GroundCyclesDoNotCount) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\nb p a .\n_:X p a .");
  EXPECT_FALSE(HasBlankInducedCycle(g));
}

TEST(Cq, MixedBlankGroundCycleDoesNotCount) {
  // X—a—Y—X: the cycle passes through the ground node a, so it is not
  // blank-induced (every consecutive pair must be blank, §2.4).
  Dictionary dict;
  Graph g = Data(&dict, "_:X p a .\na p _:Y .\n_:Y p _:X .");
  EXPECT_FALSE(HasBlankInducedCycle(g));
  Graph tree = Data(&dict, "_:X p a .\na p _:Y .");
  EXPECT_FALSE(HasBlankInducedCycle(tree));
}

TEST(Cq, GyoChainIsAcyclic) {
  Dictionary dict;
  Graph g = BlankChain(6, dict.Iri("p"), &dict);
  BooleanCq q = BooleanCq::FromGraph(g);
  EXPECT_TRUE(GyoAcyclic(q));
}

TEST(Cq, GyoTriangleIsCyclic) {
  Dictionary dict;
  Graph g = BlankCycle(3, dict.Iri("p"), &dict);
  BooleanCq q = BooleanCq::FromGraph(g);
  EXPECT_FALSE(GyoAcyclic(q));
}

TEST(Cq, GyoJoinForestIsConsistent) {
  Dictionary dict;
  Graph g = BlankChain(5, dict.Iri("p"), &dict);
  BooleanCq q = BooleanCq::FromGraph(g);
  std::vector<std::optional<size_t>> parent;
  ASSERT_TRUE(GyoAcyclic(q, &parent));
  ASSERT_EQ(parent.size(), q.atoms.size());
  // Parent pointers must be acyclic.
  for (size_t i = 0; i < parent.size(); ++i) {
    size_t steps = 0;
    size_t u = i;
    while (parent[u].has_value()) {
      u = *parent[u];
      ASSERT_LT(++steps, parent.size() + 1) << "parent cycle";
    }
  }
}

TEST(Cq, AcyclicEvaluationMatchesBacktracking) {
  Dictionary dict;
  Rng rng(31);
  RandomGraphSpec spec;
  spec.num_nodes = 10;
  spec.num_triples = 25;
  spec.num_predicates = 3;
  spec.blank_ratio = 0;
  Graph data = RandomSimpleGraph(spec, &dict, &rng);
  RelationalDb db = RelationalDb::FromGraph(data);

  for (int round = 0; round < 20; ++round) {
    Graph pattern = BlankChain(2 + rng.Below(4),
                               dict.Iri(NumberedName("urn:p", 
                                            rng.Below(spec.num_predicates))),
                               &dict);
    BooleanCq q = BooleanCq::FromGraph(pattern);
    std::optional<bool> fast = EvaluateAcyclic(q, db);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(*fast, EvaluateByBacktracking(q, db)) << "round " << round;
  }
}

TEST(Cq, CyclicQueryFallsBackCorrectly) {
  Dictionary dict;
  Term p = dict.Iri("p");
  // Data: a triangle (ground) — a blank triangle pattern matches it.
  Graph data = Data(&dict, "a p b .\nb p c .\nc p a .");
  Graph pattern = BlankCycle(3, p, &dict);
  bool used_acyclic = true;
  EXPECT_TRUE(CqSimpleEntails(data, pattern, &used_acyclic));
  EXPECT_FALSE(used_acyclic);
}

TEST(Cq, EntailmentAgreesWithHomomorphismSolver) {
  // §2.4: D_{G1} ⊨ Q_{G2} iff G1 ⊨ G2 — cross-check the whole CQ
  // pipeline against the rdf-module solver on random pairs.
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 8;
    spec.num_triples = 12;
    spec.num_predicates = 2;
    spec.blank_ratio = 0.4;
    Graph g1 = RandomSimpleGraph(spec, &dict, &rng);
    spec.num_triples = 5;
    Graph g2 = RandomSimpleGraph(spec, &dict, &rng);
    EXPECT_EQ(CqSimpleEntails(g1, g2), SimpleEntails(g1, g2))
        << "round " << round;
  }
}

TEST(Cq, ConstantsInAtomsAreFiltered) {
  Dictionary dict;
  Graph data = Data(&dict, "a p b .\nc p d .");
  Graph pattern = Data(&dict, "a p _:X .");
  EXPECT_TRUE(CqSimpleEntails(data, pattern));
  Graph absent = Data(&dict, "zz p _:X .");
  EXPECT_FALSE(CqSimpleEntails(data, absent));
}

TEST(Cq, RepeatedVariableInOneAtom) {
  Dictionary dict;
  Graph data = Data(&dict, "a p a .\nb p c .");
  Graph loop_pattern = Data(&dict, "_:X p _:X .");
  EXPECT_TRUE(CqSimpleEntails(data, loop_pattern));
  Graph data2 = Data(&dict, "b p c .");
  EXPECT_FALSE(CqSimpleEntails(data2, loop_pattern));
}

TEST(Cq, EmptyQueryIsTrue) {
  Dictionary dict;
  Graph data = Data(&dict, "a p b .");
  EXPECT_TRUE(CqSimpleEntails(data, Graph()));
}

}  // namespace
}  // namespace swdb
