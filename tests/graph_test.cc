#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>

#include "parser/text.h"
#include "rdf/scan.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

class GraphTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Term a_ = dict_.Iri("urn:a");
  Term b_ = dict_.Iri("urn:b");
  Term c_ = dict_.Iri("urn:c");
  Term p_ = dict_.Iri("urn:p");
  Term q_ = dict_.Iri("urn:q");
  Term x_ = dict_.Blank("X");
  Term y_ = dict_.Blank("Y");
};

TEST_F(GraphTest, InsertDeduplicatesAndSorts) {
  Graph g;
  EXPECT_TRUE(g.Insert(Triple(b_, p_, c_)));
  EXPECT_TRUE(g.Insert(Triple(a_, p_, b_)));
  EXPECT_FALSE(g.Insert(Triple(a_, p_, b_)));
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
}

TEST_F(GraphTest, InitializerListNormalizes) {
  Graph g{Triple(b_, p_, c_), Triple(a_, p_, b_), Triple(a_, p_, b_)};
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains(Triple(a_, p_, b_)));
}

TEST_F(GraphTest, EraseRemovesAndReportsPresence) {
  Graph g{Triple(a_, p_, b_)};
  EXPECT_TRUE(g.Erase(Triple(a_, p_, b_)));
  EXPECT_FALSE(g.Erase(Triple(a_, p_, b_)));
  EXPECT_TRUE(g.empty());
}

TEST_F(GraphTest, SubgraphRelation) {
  Graph g{Triple(a_, p_, b_), Triple(b_, p_, c_)};
  Graph sub{Triple(a_, p_, b_)};
  EXPECT_TRUE(sub.IsSubgraphOf(g));
  EXPECT_FALSE(g.IsSubgraphOf(sub));
  EXPECT_TRUE(g.IsSubgraphOf(g));
}

TEST_F(GraphTest, UniverseAndVocabulary) {
  Graph g{Triple(a_, p_, x_), Triple(x_, q_, b_)};
  std::vector<Term> universe = g.Universe();
  EXPECT_EQ(universe.size(), 5u);  // a, p, X, q, b
  std::vector<Term> voc = g.Vocabulary();
  EXPECT_EQ(voc.size(), 4u);  // a, p, q, b
  std::vector<Term> blanks = g.BlankNodes();
  ASSERT_EQ(blanks.size(), 1u);
  EXPECT_EQ(blanks[0], x_);
}

TEST_F(GraphTest, GroundAndSimplePredicates) {
  Graph ground{Triple(a_, p_, b_)};
  EXPECT_TRUE(ground.IsGround());
  EXPECT_TRUE(ground.IsSimple());

  Graph with_blank{Triple(a_, p_, x_)};
  EXPECT_FALSE(with_blank.IsGround());
  EXPECT_TRUE(with_blank.IsSimple());

  Graph with_vocab{Triple(a_, vocab::kSc, b_)};
  EXPECT_TRUE(with_vocab.IsGround());
  EXPECT_FALSE(with_vocab.IsSimple());
}

TEST_F(GraphTest, SimpleChecksAllPositions) {
  // Vocabulary in subject or object position also breaks simplicity
  // (Def. 2.2 intersects the whole vocabulary with rdfsV).
  Graph subj{Triple(vocab::kType, p_, b_)};
  EXPECT_FALSE(subj.IsSimple());
  Graph obj{Triple(a_, p_, vocab::kType)};
  EXPECT_FALSE(obj.IsSimple());
}

TEST_F(GraphTest, UnionSharesBlankNodes) {
  Graph g1{Triple(x_, p_, a_)};
  Graph g2{Triple(x_, p_, b_)};
  Graph u = Graph::Union(g1, g2);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.BlankNodes().size(), 1u);  // X shared
}

TEST_F(GraphTest, MatchBySubject) {
  Graph g{Triple(a_, p_, b_), Triple(a_, q_, c_), Triple(b_, p_, c_)};
  size_t count = 0;
  g.Match(a_, std::nullopt, std::nullopt, [&](const Triple&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2u);
}

TEST_F(GraphTest, MatchByPredicate) {
  Graph g{Triple(a_, p_, b_), Triple(a_, q_, c_), Triple(b_, p_, c_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 2u);
  EXPECT_EQ(g.CountMatches(std::nullopt, q_, std::nullopt), 1u);
}

TEST_F(GraphTest, MatchByPredicateObject) {
  Graph g{Triple(a_, p_, c_), Triple(b_, p_, c_), Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, c_), 2u);
}

TEST_F(GraphTest, MatchByObjectOnly) {
  Graph g{Triple(a_, p_, c_), Triple(b_, q_, c_), Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, std::nullopt, c_), 2u);
}

TEST_F(GraphTest, MatchFullyBound) {
  Graph g{Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(a_, p_, b_), 1u);
  EXPECT_EQ(g.CountMatches(a_, p_, c_), 0u);
}

TEST_F(GraphTest, MatchSubjectPredicate) {
  Graph g{Triple(a_, p_, b_), Triple(a_, p_, c_), Triple(a_, q_, b_)};
  EXPECT_EQ(g.CountMatches(a_, p_, std::nullopt), 2u);
}

TEST_F(GraphTest, MatchEarlyStop) {
  Graph g{Triple(a_, p_, b_), Triple(a_, p_, c_)};
  size_t count = 0;
  bool completed = g.Match(std::nullopt, std::nullopt, std::nullopt,
                           [&](const Triple&) {
                             ++count;
                             return false;
                           });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 1u);
}

TEST_F(GraphTest, MatchSurvivesMutationBetweenCalls) {
  Graph g{Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 1u);
  g.Insert(Triple(b_, p_, c_));
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 2u);
  g.Erase(Triple(a_, p_, b_));
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 1u);
}

TEST_F(GraphTest, InsertAllIsSetUnion) {
  Graph g1{Triple(a_, p_, b_)};
  Graph g2{Triple(a_, p_, b_), Triple(b_, p_, c_)};
  g1.InsertAll(g2);
  EXPECT_EQ(g1.size(), 2u);
}

class MatchRangeTest : public ::testing::Test {
 protected:
  MatchRangeTest() {
    for (int s = 0; s < 4; ++s) {
      for (int p = 0; p < 3; ++p) {
        for (int o = 0; o < 4; ++o) {
          if ((s + 2 * p + o) % 3 == 0) {
            g_.Insert(Term_(s), Pred_(p), Term_(o));
          }
        }
      }
    }
  }
  Term Term_(int i) { return dict_.Iri("urn:n" + std::to_string(i)); }
  Term Pred_(int i) { return dict_.Iri("urn:p" + std::to_string(i)); }

  // Reference: brute-force filter over all triples.
  std::vector<Triple> Brute(std::optional<Term> s, std::optional<Term> p,
                            std::optional<Term> o) {
    std::vector<Triple> out;
    for (const Triple& t : g_) {
      if (s && t.s != *s) continue;
      if (p && t.p != *p) continue;
      if (o && t.o != *o) continue;
      out.push_back(t);
    }
    return out;
  }

  Dictionary dict_;
  Graph g_;
};

TEST_F(MatchRangeTest, EveryBoundCombinationAgreesWithBruteForce) {
  std::vector<std::optional<Term>> subjects = {std::nullopt, Term_(0), Term_(2),
                                               dict_.Iri("urn:absent")};
  std::vector<std::optional<Term>> preds = {std::nullopt, Pred_(0), Pred_(1)};
  std::vector<std::optional<Term>> objects = {std::nullopt, Term_(1), Term_(3)};
  for (const auto& s : subjects) {
    for (const auto& p : preds) {
      for (const auto& o : objects) {
        std::vector<Triple> expected = Brute(s, p, o);
        MatchRange range = g_.Matches(s, p, o);
        EXPECT_EQ(range.size(), expected.size());
        EXPECT_EQ(range.empty(), expected.empty());
        std::vector<Triple> got(range.begin(), range.end());
        std::sort(got.begin(), got.end());
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(got, expected);
        EXPECT_EQ(g_.CountMatches(s, p, o), expected.size());
      }
    }
  }
}

TEST_F(MatchRangeTest, IndexOrderSelection) {
  // Each bound-position combination resolves to one contiguous range in a
  // specific permutation.
  EXPECT_EQ(g_.Matches(std::nullopt, std::nullopt, std::nullopt).order(),
            IndexOrder::kFullScan);
  EXPECT_EQ(g_.Matches(Term_(0), std::nullopt, std::nullopt).order(),
            IndexOrder::kSpo);
  EXPECT_EQ(g_.Matches(Term_(0), Pred_(0), std::nullopt).order(),
            IndexOrder::kSpo);
  EXPECT_EQ(g_.Matches(Term_(0), Pred_(0), Term_(0)).order(),
            IndexOrder::kSpo);
  EXPECT_EQ(g_.Matches(std::nullopt, Pred_(0), std::nullopt).order(),
            IndexOrder::kPso);
  EXPECT_EQ(g_.Matches(std::nullopt, Pred_(0), Term_(0)).order(),
            IndexOrder::kPos);
  EXPECT_EQ(g_.Matches(std::nullopt, std::nullopt, Term_(0)).order(),
            IndexOrder::kOsp);
  EXPECT_EQ(g_.Matches(Term_(0), std::nullopt, Term_(0)).order(),
            IndexOrder::kOsp);
}

TEST_F(MatchRangeTest, IndexOrderNamesAreStable) {
  EXPECT_STREQ(IndexOrderName(IndexOrder::kSpo), "spo");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kPso), "pso");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kPos), "pos");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kOsp), "osp");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kFullScan), "scan");
}

TEST_F(MatchRangeTest, MatchVisitorSeesSameTriplesAndStopsEarly) {
  size_t visited = 0;
  g_.Match(std::nullopt, Pred_(1), std::nullopt, [&](const Triple& t) {
    EXPECT_EQ(t.p, Pred_(1));
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, g_.CountMatches(std::nullopt, Pred_(1), std::nullopt));

  size_t stopped_at = 0;
  bool completed = g_.Match(std::nullopt, std::nullopt, std::nullopt,
                            [&](const Triple&) { return ++stopped_at < 2; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(stopped_at, 2u);
}

TEST_F(MatchRangeTest, MutationAfterIndexBuildIsReflected) {
  Term s = Term_(0);
  size_t before = g_.CountMatches(std::nullopt, std::nullopt, s);
  g_.Insert(dict_.Iri("urn:new"), Pred_(0), s);
  EXPECT_EQ(g_.CountMatches(std::nullopt, std::nullopt, s), before + 1);
  g_.Erase(Triple(dict_.Iri("urn:new"), Pred_(0), s));
  EXPECT_EQ(g_.CountMatches(std::nullopt, std::nullopt, s), before);
}

// ---------------------------------------------------------------------------
// Vectorized scan kernels: the dispatched entry points must be
// bit-identical to the scalar references on arbitrary inputs (the suite
// runs once with SWDB_SIMD=ON and once with OFF in CI, so both sides of
// the dispatch get exercised against the same references).

TEST(ScanKernels, KernelNameIsStable) {
  const std::string name = scan::KernelName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
  if (!scan::SimdEnabled()) EXPECT_EQ(name, "scalar");
}

TEST(ScanKernels, FilterEqMatchesScalarOnRandomInput) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 40; ++round) {
    const size_t n = rng() % 300;
    std::vector<uint32_t> col(n);
    for (uint32_t& v : col) {
      // Small value universe forces hits; high bit set half the time
      // (term kind bits live there, and the SIMD compare must handle
      // the full unsigned range).
      v = (rng() % 8) | ((rng() & 1) << 31);
    }
    const uint32_t key = (rng() % 8) | ((rng() & 1) << 31);
    const size_t lo = n == 0 ? 0 : rng() % (n + 1);
    const size_t hi = lo + (n - lo == 0 ? 0 : rng() % (n - lo + 1));
    std::vector<uint32_t> got, want;
    const size_t ngot = scan::FilterEq(col.data(), lo, hi, key, &got);
    const size_t nwant = scan::FilterEqScalar(col.data(), lo, hi, key, &want);
    EXPECT_EQ(ngot, nwant);
    EXPECT_EQ(got, want);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST(ScanKernels, FilterPairEqMatchesScalarOnRandomInput) {
  std::mt19937 rng(987654321);
  for (int round = 0; round < 40; ++round) {
    const size_t n = rng() % 300;
    std::vector<uint32_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = (rng() % 4) | ((rng() & 1) << 31);
      b[i] = (rng() & 1) ? a[i] : (rng() % 4) | ((rng() & 1) << 31);
    }
    std::vector<uint32_t> got, want;
    scan::FilterPairEq(a.data(), b.data(), 0, n, &got);
    scan::FilterPairEqScalar(a.data(), b.data(), 0, n, &want);
    EXPECT_EQ(got, want);
  }
}

TEST(ScanKernels, SortedEqualRangeMatchesStdEqualRange) {
  std::mt19937 rng(424242);
  for (int round = 0; round < 30; ++round) {
    // Heavy duplicate runs — some far longer than the linear-sweep
    // window — plus the full unsigned range via the high bit.
    const size_t n = 1 + rng() % 2000;
    std::vector<uint32_t> col;
    col.reserve(n);
    while (col.size() < n) {
      const uint32_t v = (rng() % 6) | ((rng() & 1) << 31);
      const size_t run = 1 + rng() % 700;
      for (size_t i = 0; i < run && col.size() < n; ++i) col.push_back(v);
    }
    std::sort(col.begin(), col.end());
    for (uint32_t key : {0u, 3u, 5u, 7u, (3u | (1u << 31)), 0xFFFFFFFFu}) {
      auto want = std::equal_range(col.begin(), col.end(), key);
      const auto [dlo, dhi] =
          scan::SortedEqualRange(col.data(), 0, col.size(), key);
      const auto [slo, shi] =
          scan::SortedEqualRangeScalar(col.data(), 0, col.size(), key);
      EXPECT_EQ(dlo, static_cast<size_t>(want.first - col.begin()));
      EXPECT_EQ(dhi, static_cast<size_t>(want.second - col.begin()));
      EXPECT_EQ(slo, dlo);
      EXPECT_EQ(shi, dhi);
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar storage: randomized parity against brute force over all 8
// bound-position combinations, with the enumeration order pinned to the
// serving permutation, before and after interleaved in-place patching.

class ColumnarFuzzTest : public ::testing::Test {
 protected:
  Term S(uint32_t i) { return Term::Iri(vocab::kReservedIris + i); }
  Term P(uint32_t i) { return Term::Iri(vocab::kReservedIris + 100 + i); }
  Term O(uint32_t i) { return Term::Blank(i); }  // exercises kind bits

  Triple RandomTriple(std::mt19937& rng) {
    return Triple(S(rng() % 9), P(rng() % 5), O(rng() % 9));
  }

  static std::array<uint32_t, 3> KeyOf(const Triple& t, IndexOrder ord) {
    switch (ord) {
      case IndexOrder::kPso:
        return {t.p.bits(), t.s.bits(), t.o.bits()};
      case IndexOrder::kPos:
        return {t.p.bits(), t.o.bits(), t.s.bits()};
      case IndexOrder::kOsp:
        return {t.o.bits(), t.s.bits(), t.p.bits()};
      default:
        return {t.s.bits(), t.p.bits(), t.o.bits()};
    }
  }

  // Checks every bound combination over a sample of keys: same triples
  // as brute force, in exactly the serving permutation's order.
  void CheckAllCombos(const Graph& g) {
    std::vector<std::optional<Term>> ss = {std::nullopt, S(0), S(4), S(8)};
    std::vector<std::optional<Term>> ps = {std::nullopt, P(0), P(3)};
    std::vector<std::optional<Term>> os = {std::nullopt, O(1), O(7)};
    for (const auto& s : ss) {
      for (const auto& p : ps) {
        for (const auto& o : os) {
          std::vector<Triple> expected;
          for (const Triple& t : g) {
            if (s && t.s != *s) continue;
            if (p && t.p != *p) continue;
            if (o && t.o != *o) continue;
            expected.push_back(t);
          }
          MatchRange range = g.Matches(s, p, o);
          const IndexOrder ord = range.order();
          std::sort(expected.begin(), expected.end(),
                    [ord](const Triple& x, const Triple& y) {
                      return KeyOf(x, ord) < KeyOf(y, ord);
                    });
          std::vector<Triple> got(range.begin(), range.end());
          ASSERT_EQ(got, expected)
              << "order " << IndexOrderName(ord) << " size " << g.size();
        }
      }
    }
  }
};

TEST_F(ColumnarFuzzTest, MatchesAgreeWithBruteForceAcrossMutations) {
  std::mt19937 rng(7);
  for (int round = 0; round < 5; ++round) {
    Graph g;
    for (int i = 0; i < 120; ++i) g.Insert(RandomTriple(rng));
    CheckAllCombos(g);  // freshly built indexes
    // Interleaved single-triple mutations: reads between them keep the
    // unread-patch counter below the crossover, so this exercises the
    // in-place columnar patch paths.
    for (int step = 0; step < 60; ++step) {
      if (rng() & 1) {
        g.Insert(RandomTriple(rng));
      } else if (!g.empty()) {
        const Triple victim = g[rng() % g.size()];
        g.Erase(victim);
      }
      if (step % 10 == 0) CheckAllCombos(g);
    }
    CheckAllCombos(g);
    const GraphStats st = g.Stats();
    EXPECT_GT(st.index_patches, 0u) << "fuzz never hit the patch path";
  }
}

TEST_F(ColumnarFuzzTest, FilterBoundAndPairEqualAgreeWithBruteForce) {
  std::mt19937 rng(99);
  Graph g;
  for (int i = 0; i < 200; ++i) g.Insert(RandomTriple(rng));
  // Diagonal triples so FilterPairEqual has survivors: s and o share the
  // term universe only through explicit equality of bits, so craft a few
  // (b, p, b) rows via blank subjects.
  for (uint32_t i = 0; i < 6; ++i) g.Insert(Triple(O(i), P(0), O(i)));

  // Columnar range (predicate-bound) and direct range (full scan).
  const MatchRange byp = g.Matches(std::nullopt, P(0), std::nullopt);
  ASSERT_TRUE(byp.columnar());
  const MatchRange full = g.Matches(std::nullopt, std::nullopt, std::nullopt);
  ASSERT_FALSE(full.columnar());

  for (const MatchRange* range : {&byp, &full}) {
    // FilterBound on the object position.
    for (uint32_t k = 0; k < 9; ++k) {
      std::vector<uint32_t> rows;
      range->FilterBound(2, O(k), &rows);
      std::vector<Triple> got;
      for (uint32_t row : rows) got.push_back(range->TripleAt(row));
      std::vector<Triple> want;
      for (const Triple& t : *range) {
        if (t.o == O(k)) want.push_back(t);
      }
      EXPECT_EQ(got, want);
    }
    // FilterPairEqual on (s, o).
    std::vector<uint32_t> rows;
    range->FilterPairEqual(0, 2, &rows);
    std::vector<Triple> got;
    for (uint32_t row : rows) got.push_back(range->TripleAt(row));
    std::vector<Triple> want;
    for (const Triple& t : *range) {
      if (t.s == t.o) want.push_back(t);
    }
    EXPECT_EQ(got, want);
    EXPECT_FALSE(want.empty()) << "pair filter had nothing to keep";
  }
}

// ---------------------------------------------------------------------------
// COW spine sharing, leaf splits, and stats.

TEST(GraphSpine, CopySharesLeavesAndPatchesDiverge) {
  Graph g;
  for (uint32_t i = 0; i < 5000; ++i) {
    g.Insert(Triple(Term::Iri(100 + i), Term::Iri(50 + i % 7),
                    Term::Iri(200 + i % 97)));
  }
  g.WarmIndexes();
  const Graph snapshot = g;  // copies leaf pointers, not contents
  snapshot.WarmIndexes();    // already built: shares the spines

  const SpineSharing before = g.SharedLeaves(snapshot);
  ASSERT_GT(before.total, 8u);  // 5000 triples span multiple leaves
  EXPECT_EQ(before.shared, before.total);

  // A single insert clones at most one leaf per spine (plus a possible
  // split); everything else stays shared, and the snapshot is untouched.
  const size_t snap_size = snapshot.size();
  ASSERT_TRUE(g.Insert(Triple(Term::Iri(99), Term::Iri(49), Term::Iri(199))));
  const SpineSharing after = g.SharedLeaves(snapshot);
  EXPECT_EQ(snapshot.size(), snap_size);
  EXPECT_FALSE(snapshot.Contains(
      Triple(Term::Iri(99), Term::Iri(49), Term::Iri(199))));
  EXPECT_GE(after.shared + 8, after.total);  // ≤ 2 leaves diverged per spine
  EXPECT_LT(after.shared, after.total);
  EXPECT_GT(g.Stats().index_patches, 0u);
}

TEST(GraphSpine, MutationFuzzMatchesFromScratchBuild) {
  std::mt19937 rng(20260808);
  Graph g;
  std::set<Triple> ref;
  // Interleave inserts/erases (biased toward growth so leaves split),
  // periodically checking the mutated graph is bit-identical to a
  // from-scratch build of the reference set.
  for (int step = 0; step < 12000; ++step) {
    const Triple t(Term::Iri(rng() % 700), Term::Iri(rng() % 11),
                   Term::Iri(rng() % 700));
    if (rng() % 4 != 0) {
      EXPECT_EQ(g.Insert(t), ref.insert(t).second);
    } else {
      EXPECT_EQ(g.Erase(t), ref.erase(t) != 0);
    }
    if (step % 400 == 0) g.WarmIndexes();  // exercise the patch paths
    if (step % 1499 == 0) {
      ASSERT_EQ(g.size(), ref.size());
      const Graph fresh(std::vector<Triple>(ref.begin(), ref.end()));
      ASSERT_TRUE(g == fresh);
      ASSERT_EQ(g.triples(), fresh.triples());
    }
  }
  ASSERT_EQ(g.size(), ref.size());
  size_t i = 0;
  for (const Triple& t : g) {
    ASSERT_EQ(g[i++], t);
    ASSERT_TRUE(ref.count(t) != 0);
  }
  // Lookups agree with the reference on every routing combination.
  std::vector<Triple> probes(ref.begin(), ref.end());
  for (size_t k = 0; k < probes.size(); k += 97) {
    const Triple& t = probes[k];
    EXPECT_GE(g.CountMatches(t.s, std::nullopt, std::nullopt), 1u);
    EXPECT_GE(g.CountMatches(t.s, t.p, std::nullopt), 1u);
    EXPECT_GE(g.CountMatches(std::nullopt, t.p, t.o), 1u);
    EXPECT_EQ(g.CountMatches(t.s, t.p, t.o), 1u);
  }
}

TEST(GraphStatsTest, CountsCallsBytesAndYields) {
  Graph g;
  for (uint32_t i = 0; i < 64; ++i) {
    g.Insert(Triple(Term::Iri(100 + i % 8), Term::Iri(50 + i % 4),
                    Term::Iri(200 + i % 16)));
  }
  const size_t n = g.size();
  GraphStats st = g.Stats();
  EXPECT_EQ(st.matches_calls, 0u);
  EXPECT_FALSE(st.indexes_built);
  EXPECT_GE(st.bytes_primary, n * sizeof(Triple));
  EXPECT_EQ(st.bytes_pso, 0u);

  const size_t hits = g.CountMatches(std::nullopt, Term::Iri(50), std::nullopt);
  g.CountMatches(std::nullopt, std::nullopt, Term::Iri(200));
  st = g.Stats();
  EXPECT_EQ(st.matches_calls, 2u);
  EXPECT_GE(st.rows_yielded, hits);
  EXPECT_TRUE(st.indexes_built);
  // Three uint32 key columns per permutation spine, three permutations.
  EXPECT_GE(st.bytes_pso, n * 3 * sizeof(uint32_t));
  EXPECT_GE(st.bytes_total(),
            st.bytes_primary + 3 * n * 3 * sizeof(uint32_t));
  EXPECT_GE(st.leaves_primary, 1u);
  EXPECT_GE(st.leaves_index, 3u);
}

TEST(GraphParse, RoundTrip) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "urn:a urn:p urn:b .\n"
                 "_:X urn:p urn:b .\n"
                 "urn:a sc urn:c .\n");
  std::string text = FormatGraph(g, dict);
  Dictionary dict2;
  Result<Graph> reparsed = ParseGraph(text, &dict2);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), g.size());
  EXPECT_EQ(FormatGraph(*reparsed, dict2), text);
}

}  // namespace
}  // namespace swdb
