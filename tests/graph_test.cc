#include "rdf/graph.h"

#include <gtest/gtest.h>

#include "parser/text.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

class GraphTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Term a_ = dict_.Iri("urn:a");
  Term b_ = dict_.Iri("urn:b");
  Term c_ = dict_.Iri("urn:c");
  Term p_ = dict_.Iri("urn:p");
  Term q_ = dict_.Iri("urn:q");
  Term x_ = dict_.Blank("X");
  Term y_ = dict_.Blank("Y");
};

TEST_F(GraphTest, InsertDeduplicatesAndSorts) {
  Graph g;
  EXPECT_TRUE(g.Insert(Triple(b_, p_, c_)));
  EXPECT_TRUE(g.Insert(Triple(a_, p_, b_)));
  EXPECT_FALSE(g.Insert(Triple(a_, p_, b_)));
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
}

TEST_F(GraphTest, InitializerListNormalizes) {
  Graph g{Triple(b_, p_, c_), Triple(a_, p_, b_), Triple(a_, p_, b_)};
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains(Triple(a_, p_, b_)));
}

TEST_F(GraphTest, EraseRemovesAndReportsPresence) {
  Graph g{Triple(a_, p_, b_)};
  EXPECT_TRUE(g.Erase(Triple(a_, p_, b_)));
  EXPECT_FALSE(g.Erase(Triple(a_, p_, b_)));
  EXPECT_TRUE(g.empty());
}

TEST_F(GraphTest, SubgraphRelation) {
  Graph g{Triple(a_, p_, b_), Triple(b_, p_, c_)};
  Graph sub{Triple(a_, p_, b_)};
  EXPECT_TRUE(sub.IsSubgraphOf(g));
  EXPECT_FALSE(g.IsSubgraphOf(sub));
  EXPECT_TRUE(g.IsSubgraphOf(g));
}

TEST_F(GraphTest, UniverseAndVocabulary) {
  Graph g{Triple(a_, p_, x_), Triple(x_, q_, b_)};
  std::vector<Term> universe = g.Universe();
  EXPECT_EQ(universe.size(), 5u);  // a, p, X, q, b
  std::vector<Term> voc = g.Vocabulary();
  EXPECT_EQ(voc.size(), 4u);  // a, p, q, b
  std::vector<Term> blanks = g.BlankNodes();
  ASSERT_EQ(blanks.size(), 1u);
  EXPECT_EQ(blanks[0], x_);
}

TEST_F(GraphTest, GroundAndSimplePredicates) {
  Graph ground{Triple(a_, p_, b_)};
  EXPECT_TRUE(ground.IsGround());
  EXPECT_TRUE(ground.IsSimple());

  Graph with_blank{Triple(a_, p_, x_)};
  EXPECT_FALSE(with_blank.IsGround());
  EXPECT_TRUE(with_blank.IsSimple());

  Graph with_vocab{Triple(a_, vocab::kSc, b_)};
  EXPECT_TRUE(with_vocab.IsGround());
  EXPECT_FALSE(with_vocab.IsSimple());
}

TEST_F(GraphTest, SimpleChecksAllPositions) {
  // Vocabulary in subject or object position also breaks simplicity
  // (Def. 2.2 intersects the whole vocabulary with rdfsV).
  Graph subj{Triple(vocab::kType, p_, b_)};
  EXPECT_FALSE(subj.IsSimple());
  Graph obj{Triple(a_, p_, vocab::kType)};
  EXPECT_FALSE(obj.IsSimple());
}

TEST_F(GraphTest, UnionSharesBlankNodes) {
  Graph g1{Triple(x_, p_, a_)};
  Graph g2{Triple(x_, p_, b_)};
  Graph u = Graph::Union(g1, g2);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.BlankNodes().size(), 1u);  // X shared
}

TEST_F(GraphTest, MatchBySubject) {
  Graph g{Triple(a_, p_, b_), Triple(a_, q_, c_), Triple(b_, p_, c_)};
  size_t count = 0;
  g.Match(a_, std::nullopt, std::nullopt, [&](const Triple&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2u);
}

TEST_F(GraphTest, MatchByPredicate) {
  Graph g{Triple(a_, p_, b_), Triple(a_, q_, c_), Triple(b_, p_, c_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 2u);
  EXPECT_EQ(g.CountMatches(std::nullopt, q_, std::nullopt), 1u);
}

TEST_F(GraphTest, MatchByPredicateObject) {
  Graph g{Triple(a_, p_, c_), Triple(b_, p_, c_), Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, c_), 2u);
}

TEST_F(GraphTest, MatchByObjectOnly) {
  Graph g{Triple(a_, p_, c_), Triple(b_, q_, c_), Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, std::nullopt, c_), 2u);
}

TEST_F(GraphTest, MatchFullyBound) {
  Graph g{Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(a_, p_, b_), 1u);
  EXPECT_EQ(g.CountMatches(a_, p_, c_), 0u);
}

TEST_F(GraphTest, MatchSubjectPredicate) {
  Graph g{Triple(a_, p_, b_), Triple(a_, p_, c_), Triple(a_, q_, b_)};
  EXPECT_EQ(g.CountMatches(a_, p_, std::nullopt), 2u);
}

TEST_F(GraphTest, MatchEarlyStop) {
  Graph g{Triple(a_, p_, b_), Triple(a_, p_, c_)};
  size_t count = 0;
  bool completed = g.Match(std::nullopt, std::nullopt, std::nullopt,
                           [&](const Triple&) {
                             ++count;
                             return false;
                           });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 1u);
}

TEST_F(GraphTest, MatchSurvivesMutationBetweenCalls) {
  Graph g{Triple(a_, p_, b_)};
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 1u);
  g.Insert(Triple(b_, p_, c_));
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 2u);
  g.Erase(Triple(a_, p_, b_));
  EXPECT_EQ(g.CountMatches(std::nullopt, p_, std::nullopt), 1u);
}

TEST_F(GraphTest, InsertAllIsSetUnion) {
  Graph g1{Triple(a_, p_, b_)};
  Graph g2{Triple(a_, p_, b_), Triple(b_, p_, c_)};
  g1.InsertAll(g2);
  EXPECT_EQ(g1.size(), 2u);
}

class MatchRangeTest : public ::testing::Test {
 protected:
  MatchRangeTest() {
    for (int s = 0; s < 4; ++s) {
      for (int p = 0; p < 3; ++p) {
        for (int o = 0; o < 4; ++o) {
          if ((s + 2 * p + o) % 3 == 0) {
            g_.Insert(Term_(s), Pred_(p), Term_(o));
          }
        }
      }
    }
  }
  Term Term_(int i) { return dict_.Iri("urn:n" + std::to_string(i)); }
  Term Pred_(int i) { return dict_.Iri("urn:p" + std::to_string(i)); }

  // Reference: brute-force filter over all triples.
  std::vector<Triple> Brute(std::optional<Term> s, std::optional<Term> p,
                            std::optional<Term> o) {
    std::vector<Triple> out;
    for (const Triple& t : g_) {
      if (s && t.s != *s) continue;
      if (p && t.p != *p) continue;
      if (o && t.o != *o) continue;
      out.push_back(t);
    }
    return out;
  }

  Dictionary dict_;
  Graph g_;
};

TEST_F(MatchRangeTest, EveryBoundCombinationAgreesWithBruteForce) {
  std::vector<std::optional<Term>> subjects = {std::nullopt, Term_(0), Term_(2),
                                               dict_.Iri("urn:absent")};
  std::vector<std::optional<Term>> preds = {std::nullopt, Pred_(0), Pred_(1)};
  std::vector<std::optional<Term>> objects = {std::nullopt, Term_(1), Term_(3)};
  for (const auto& s : subjects) {
    for (const auto& p : preds) {
      for (const auto& o : objects) {
        std::vector<Triple> expected = Brute(s, p, o);
        MatchRange range = g_.Matches(s, p, o);
        EXPECT_EQ(range.size(), expected.size());
        EXPECT_EQ(range.empty(), expected.empty());
        std::vector<Triple> got(range.begin(), range.end());
        std::sort(got.begin(), got.end());
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(got, expected);
        EXPECT_EQ(g_.CountMatches(s, p, o), expected.size());
      }
    }
  }
}

TEST_F(MatchRangeTest, IndexOrderSelection) {
  // Each bound-position combination resolves to one contiguous range in a
  // specific permutation.
  EXPECT_EQ(g_.Matches(std::nullopt, std::nullopt, std::nullopt).order(),
            IndexOrder::kFullScan);
  EXPECT_EQ(g_.Matches(Term_(0), std::nullopt, std::nullopt).order(),
            IndexOrder::kSpo);
  EXPECT_EQ(g_.Matches(Term_(0), Pred_(0), std::nullopt).order(),
            IndexOrder::kSpo);
  EXPECT_EQ(g_.Matches(Term_(0), Pred_(0), Term_(0)).order(),
            IndexOrder::kSpo);
  EXPECT_EQ(g_.Matches(std::nullopt, Pred_(0), std::nullopt).order(),
            IndexOrder::kPso);
  EXPECT_EQ(g_.Matches(std::nullopt, Pred_(0), Term_(0)).order(),
            IndexOrder::kPos);
  EXPECT_EQ(g_.Matches(std::nullopt, std::nullopt, Term_(0)).order(),
            IndexOrder::kOsp);
  EXPECT_EQ(g_.Matches(Term_(0), std::nullopt, Term_(0)).order(),
            IndexOrder::kOsp);
}

TEST_F(MatchRangeTest, IndexOrderNamesAreStable) {
  EXPECT_STREQ(IndexOrderName(IndexOrder::kSpo), "spo");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kPso), "pso");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kPos), "pos");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kOsp), "osp");
  EXPECT_STREQ(IndexOrderName(IndexOrder::kFullScan), "scan");
}

TEST_F(MatchRangeTest, MatchVisitorSeesSameTriplesAndStopsEarly) {
  size_t visited = 0;
  g_.Match(std::nullopt, Pred_(1), std::nullopt, [&](const Triple& t) {
    EXPECT_EQ(t.p, Pred_(1));
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, g_.CountMatches(std::nullopt, Pred_(1), std::nullopt));

  size_t stopped_at = 0;
  bool completed = g_.Match(std::nullopt, std::nullopt, std::nullopt,
                            [&](const Triple&) { return ++stopped_at < 2; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(stopped_at, 2u);
}

TEST_F(MatchRangeTest, MutationAfterIndexBuildIsReflected) {
  Term s = Term_(0);
  size_t before = g_.CountMatches(std::nullopt, std::nullopt, s);
  g_.Insert(dict_.Iri("urn:new"), Pred_(0), s);
  EXPECT_EQ(g_.CountMatches(std::nullopt, std::nullopt, s), before + 1);
  g_.Erase(Triple(dict_.Iri("urn:new"), Pred_(0), s));
  EXPECT_EQ(g_.CountMatches(std::nullopt, std::nullopt, s), before);
}

TEST(GraphParse, RoundTrip) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "urn:a urn:p urn:b .\n"
                 "_:X urn:p urn:b .\n"
                 "urn:a sc urn:c .\n");
  std::string text = FormatGraph(g, dict);
  Dictionary dict2;
  Result<Graph> reparsed = ParseGraph(text, &dict2);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), g.size());
  EXPECT_EQ(FormatGraph(*reparsed, dict2), text);
}

}  // namespace
}  // namespace swdb
