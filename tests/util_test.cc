#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"

// GCC 12's -Wmaybe-uninitialized misfires on std::variant destruction
// under -O3 (GCC PR 105937) when Result<int> is constructed and
// destroyed within one inlined test body; localize the suppression to
// this test TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace swdb {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad triple");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad triple");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad triple");
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kLimitExceeded), "LimitExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(Result, MoveOut) {
  Result<std::string> r(std::string("hello"));
  std::string s = *std::move(r);
  EXPECT_EQ(s, "hello");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    differences += a.Next() != b.Next();
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.25);
  }
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Hash, CombineChangesSeed) {
  size_t seed = 0;
  HashCombine(&seed, 12345);
  EXPECT_NE(seed, 0u);
  size_t seed2 = 0;
  HashCombine(&seed2, 54321);
  EXPECT_NE(seed, seed2);
}

TEST(Hash, PairDistinguishesOrder) {
  EXPECT_NE(HashPair(1, 2), HashPair(2, 1));
}

}  // namespace
}  // namespace swdb
