#include "parser/text.h"

#include <gtest/gtest.h>

namespace swdb {
namespace {

TEST(ParseTerm, Kinds) {
  Dictionary dict;
  Result<Term> iri = ParseTerm("urn:a", &dict);
  ASSERT_TRUE(iri.ok());
  EXPECT_TRUE(iri->IsIri());

  Result<Term> angle = ParseTerm("<http://x/y>", &dict);
  ASSERT_TRUE(angle.ok());
  EXPECT_EQ(dict.Name(*angle), "http://x/y");

  Result<Term> blank = ParseTerm("_:node", &dict);
  ASSERT_TRUE(blank.ok());
  EXPECT_TRUE(blank->IsBlank());

  Result<Term> var = ParseTerm("?X", &dict, /*allow_vars=*/true);
  ASSERT_TRUE(var.ok());
  EXPECT_TRUE(var->IsVar());
}

TEST(ParseTerm, VocabularyKeywords) {
  Dictionary dict;
  EXPECT_EQ(*ParseTerm("sp", &dict), vocab::kSp);
  EXPECT_EQ(*ParseTerm("sc", &dict), vocab::kSc);
  EXPECT_EQ(*ParseTerm("type", &dict), vocab::kType);
  EXPECT_EQ(*ParseTerm("dom", &dict), vocab::kDom);
  EXPECT_EQ(*ParseTerm("range", &dict), vocab::kRange);
}

TEST(ParseTerm, Errors) {
  Dictionary dict;
  EXPECT_FALSE(ParseTerm("", &dict).ok());
  EXPECT_FALSE(ParseTerm("?", &dict, true).ok());
  EXPECT_FALSE(ParseTerm("_:", &dict).ok());
  EXPECT_FALSE(ParseTerm("<>", &dict).ok());
  EXPECT_FALSE(ParseTerm("?X", &dict, /*allow_vars=*/false).ok());
}

TEST(ParseGraph, CommentsAndBlankLines) {
  Dictionary dict;
  Result<Graph> g = ParseGraph(
      "# a comment\n"
      "\n"
      "a p b .   # trailing comment\n"
      "c p d\n",  // no trailing dot
      &dict);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 2u);
}

TEST(ParseGraph, ErrorsCarryLineNumbers) {
  Dictionary dict;
  Result<Graph> g = ParseGraph("a p b .\na p .\n", &dict);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(ParseGraph, RejectsBlankPredicate) {
  Dictionary dict;
  Result<Graph> g = ParseGraph("a _:P b .", &dict);
  EXPECT_FALSE(g.ok());
}

TEST(ParseGraph, RejectsVariablesUnlessAllowed) {
  Dictionary dict;
  EXPECT_FALSE(ParseGraph("?X p b .", &dict, false).ok());
  EXPECT_TRUE(ParseGraph("?X p b .", &dict, true).ok());
}

TEST(Format, VocabularyRoundTrips) {
  Dictionary dict;
  Triple t(dict.Iri("a"), vocab::kSc, dict.Iri("b"));
  EXPECT_EQ(FormatTriple(t, dict), "a sc b .");
}

TEST(Format, BlankAndVarSpelling) {
  Dictionary dict;
  EXPECT_EQ(FormatTerm(dict.Blank("n"), dict), "_:n");
  EXPECT_EQ(FormatTerm(dict.Var("V"), dict), "?V");
}

TEST(ParseQuery, MinimalQuery) {
  Dictionary dict;
  Result<Query> q = ParseQuery(
      "head: ?X p ?Y .\n"
      "body: ?X p ?Y .\n",
      &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->premise.empty());
  EXPECT_TRUE(q->constraints.empty());
}

TEST(ParseQuery, DuplicateBindIsDeduplicated) {
  Dictionary dict;
  Result<Query> q = ParseQuery(
      "head: ?X p ?Y .\n"
      "body: ?X p ?Y .\n"
      "bind: ?X ?X\n"
      "bind: ?X\n",
      &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->constraints.size(), 1u);
}

TEST(ParseQuery, PremiseWithVariablesRejected) {
  Dictionary dict;
  Result<Query> q = ParseQuery(
      "head: ?X p ?Y .\n"
      "body: ?X p ?Y .\n"
      "premise: ?X t s .\n",
      &dict);
  EXPECT_FALSE(q.ok());
}

TEST(ParseQuery, MissingColonIsParseError) {
  Dictionary dict;
  Result<Query> q = ParseQuery("head ?X p ?Y .", &dict);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace swdb
