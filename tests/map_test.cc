#include "rdf/map.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace swdb {
namespace {

class MapTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Term a_ = dict_.Iri("urn:a");
  Term b_ = dict_.Iri("urn:b");
  Term p_ = dict_.Iri("urn:p");
  Term x_ = dict_.Blank("X");
  Term y_ = dict_.Blank("Y");
  Term z_ = dict_.Blank("Z");
};

TEST_F(MapTest, ApplyPreservesUrisAndUnboundTerms) {
  TermMap mu;
  mu.Bind(x_, a_);
  EXPECT_EQ(mu.Apply(a_), a_);
  EXPECT_EQ(mu.Apply(x_), a_);
  EXPECT_EQ(mu.Apply(y_), y_);
}

TEST_F(MapTest, ApplyTriple) {
  TermMap mu;
  mu.Bind(x_, a_);
  mu.Bind(y_, x_);
  Triple t(x_, p_, y_);
  EXPECT_EQ(mu.Apply(t), Triple(a_, p_, x_));
}

TEST_F(MapTest, ImageCanCollapseTriples) {
  TermMap mu;
  mu.Bind(x_, a_);
  mu.Bind(y_, a_);
  Graph g{Triple(x_, p_, b_), Triple(y_, p_, b_)};
  Graph image = mu.Apply(g);
  EXPECT_EQ(image.size(), 1u);
  EXPECT_TRUE(image.Contains(Triple(a_, p_, b_)));
}

TEST_F(MapTest, Rebinding) {
  TermMap mu;
  mu.Bind(x_, a_);
  mu.Bind(x_, b_);
  EXPECT_EQ(mu.Apply(x_), b_);
  mu.Unbind(x_);
  EXPECT_EQ(mu.Apply(x_), x_);
}

TEST_F(MapTest, Composition) {
  TermMap first;
  first.Bind(x_, y_);
  TermMap second;
  second.Bind(y_, a_);
  second.Bind(z_, b_);
  TermMap composed = first.ComposeWith(second);
  EXPECT_EQ(composed.Apply(x_), a_);  // second(first(x)) = second(y) = a
  EXPECT_EQ(composed.Apply(y_), a_);  // key of second only
  EXPECT_EQ(composed.Apply(z_), b_);
}

TEST_F(MapTest, ProperInstanceBySendingBlankToUri) {
  Graph g{Triple(x_, p_, b_)};
  TermMap mu;
  mu.Bind(x_, a_);
  EXPECT_TRUE(IsProperInstanceMap(g, mu));
}

TEST_F(MapTest, ProperInstanceByIdentifyingBlanks) {
  Graph g{Triple(x_, p_, y_)};
  TermMap mu;
  mu.Bind(x_, y_);
  EXPECT_TRUE(IsProperInstanceMap(g, mu));
}

TEST_F(MapTest, RenamingBlanksIsNotProper) {
  Graph g{Triple(x_, p_, y_)};
  TermMap mu;
  mu.Bind(x_, z_);  // rename, still two distinct blanks
  EXPECT_FALSE(IsProperInstanceMap(g, mu));
  EXPECT_FALSE(IsProperInstanceMap(g, TermMap()));
}

TEST_F(MapTest, MergeRenamesOnlyClashingBlanks) {
  Graph g1{Triple(x_, p_, a_)};
  Graph g2{Triple(x_, p_, b_), Triple(y_, p_, b_)};
  TermMap renaming;
  Graph merged = Merge(g1, g2, &dict_, &renaming);
  // X clashes and is renamed; Y does not and is kept.
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.BlankNodes().size(), 3u);
  EXPECT_TRUE(renaming.IsBound(x_));
  EXPECT_FALSE(renaming.IsBound(y_));
}

TEST_F(MapTest, MergeOfDisjointGraphsIsUnion) {
  Graph g1{Triple(x_, p_, a_)};
  Graph g2{Triple(y_, p_, b_)};
  Graph merged = Merge(g1, g2, &dict_);
  EXPECT_EQ(merged, Graph::Union(g1, g2));
}

TEST_F(MapTest, FreshBlankCopyIsIsomorphicAndDisjoint) {
  Graph g{Triple(x_, p_, y_), Triple(y_, p_, a_)};
  Graph copy = FreshBlankCopy(g, &dict_);
  EXPECT_EQ(copy.size(), g.size());
  // Blank sets disjoint.
  for (Term blank : copy.BlankNodes()) {
    EXPECT_NE(blank, x_);
    EXPECT_NE(blank, y_);
  }
}

TEST_F(MapTest, SkolemizeRoundTrip) {
  Graph g{Triple(x_, p_, y_), Triple(a_, p_, b_)};
  TermMap sk;
  Graph ground = Skolemize(g, &dict_, &sk);
  EXPECT_TRUE(ground.IsGround());
  EXPECT_EQ(ground.size(), g.size());
  Graph back = DeSkolemize(ground, sk);
  EXPECT_EQ(back, g);
}

TEST_F(MapTest, DeSkolemizeDropsBlankPredicateTriples) {
  // If a Skolem constant ends up in predicate position (possible in a
  // closure of a graph with (a, sp, X)), de-Skolemization must drop the
  // triple (paper §3.1).
  TermMap sk;
  sk.Bind(x_, dict_.Iri("urn:skolem:x"));
  Graph h{Triple(a_, dict_.Iri("urn:skolem:x"), b_)};
  Graph back = DeSkolemize(h, sk);
  EXPECT_TRUE(back.empty());
}

}  // namespace
}  // namespace swdb
