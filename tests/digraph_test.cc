#include "graphtheory/digraph.h"

#include <gtest/gtest.h>

#include "rdf/hom.h"
#include "rdf/iso.h"

namespace swdb {
namespace {

TEST(Digraph, EdgesAreDeduplicatedAndSorted) {
  Digraph g(3);
  g.AddEdge(1, 2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(2, 1));
}

TEST(Digraph, Adjacency) {
  Digraph g(4, {{0, 1}, {0, 2}, {3, 0}});
  EXPECT_EQ(g.OutNeighbors(0).size(), 2u);
  EXPECT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_TRUE(g.OutNeighbors(1).empty());
}

TEST(Digraph, PathIsHomomorphicToEverythingWithEdges) {
  Digraph path = Digraph::Path(5);
  Digraph loop(1);
  loop.AddEdge(0, 0);
  EXPECT_TRUE(IsHomomorphic(path, loop));
}

TEST(Digraph, OddCycleNotTwoColorable) {
  // C5 → K2 would be a 2-coloring of an odd cycle.
  Digraph c5 = Digraph::SymmetricCycle(5);
  Digraph k2 = Digraph::CompleteSymmetric(2);
  Digraph k3 = Digraph::CompleteSymmetric(3);
  EXPECT_FALSE(IsHomomorphic(c5, k2));
  EXPECT_TRUE(IsHomomorphic(c5, k3));
}

TEST(Digraph, EvenCycleTwoColorable) {
  Digraph c6 = Digraph::SymmetricCycle(6);
  Digraph k2 = Digraph::CompleteSymmetric(2);
  EXPECT_TRUE(IsHomomorphic(c6, k2));
}

TEST(Digraph, CliqueHomomorphismIsContainment) {
  // K4 → K3 impossible; K3 → K4 trivially.
  Digraph k3 = Digraph::CompleteSymmetric(3);
  Digraph k4 = Digraph::CompleteSymmetric(4);
  EXPECT_FALSE(IsHomomorphic(k4, k3));
  EXPECT_TRUE(IsHomomorphic(k3, k4));
}

TEST(Digraph, HomomorphismWitnessIsValid) {
  Digraph c6 = Digraph::SymmetricCycle(6);
  Digraph k3 = Digraph::CompleteSymmetric(3);
  auto h = FindGraphHomomorphism(c6, k3);
  ASSERT_TRUE(h.has_value());
  for (const auto& [u, v] : c6.edges()) {
    EXPECT_TRUE(k3.HasEdge((*h)[u], (*h)[v]));
  }
}

TEST(Digraph, HomomorphicEquivalence) {
  // Even cycles are hom-equivalent to K2.
  Digraph c4 = Digraph::SymmetricCycle(4);
  Digraph k2 = Digraph::CompleteSymmetric(2);
  EXPECT_TRUE(HomomorphicallyEquivalent(c4, k2));
  Digraph k3 = Digraph::CompleteSymmetric(3);
  EXPECT_FALSE(HomomorphicallyEquivalent(c4, k3));
}

TEST(Digraph, GraphCoreOfEvenCycleIsK2) {
  Digraph c6 = Digraph::SymmetricCycle(6);
  std::vector<uint32_t> kept;
  Digraph core = GraphCore(c6, &kept);
  EXPECT_EQ(core.node_count(), 2u);
  EXPECT_EQ(core.edge_count(), 2u);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Digraph, GraphCoreOfCliqueIsItself) {
  Digraph k3 = Digraph::CompleteSymmetric(3);
  Digraph core = GraphCore(k3);
  EXPECT_EQ(core.node_count(), 3u);
  EXPECT_EQ(core.edge_count(), 6u);
}

TEST(Digraph, CycleDetection) {
  EXPECT_FALSE(HasCycle(Digraph::Path(4)));
  EXPECT_TRUE(HasCycle(Digraph::SymmetricCycle(3)));
  Digraph self_loop(1);
  self_loop.AddEdge(0, 0);
  EXPECT_TRUE(HasCycle(self_loop));
}

TEST(Digraph, TransitiveReductionOfChainWithShortcut) {
  Digraph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Digraph reduced = TransitiveReduction(g);
  EXPECT_EQ(reduced.edge_count(), 2u);
  EXPECT_TRUE(reduced.HasEdge(0, 1));
  EXPECT_TRUE(reduced.HasEdge(1, 2));
  EXPECT_FALSE(reduced.HasEdge(0, 2));
}

TEST(Digraph, TransitiveReductionOfDiamond) {
  Digraph g(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}});
  Digraph reduced = TransitiveReduction(g);
  EXPECT_EQ(reduced.edge_count(), 4u);
  EXPECT_FALSE(reduced.HasEdge(0, 3));
}

TEST(Digraph, TransitiveReductionKeepsNecessaryEdges) {
  Digraph g(4, {{0, 1}, {2, 3}});
  Digraph reduced = TransitiveReduction(g);
  EXPECT_EQ(reduced.edge_count(), 2u);
}

TEST(Encode, HomomorphismTransfersToRdfMaps) {
  // §2.4: H1 homomorphic to H2 iff there is a map enc(H1) → enc(H2).
  Dictionary dict;
  Term e = dict.Iri("urn:e");
  Digraph c5 = Digraph::SymmetricCycle(5);
  Digraph c6 = Digraph::SymmetricCycle(6);
  Digraph k2 = Digraph::CompleteSymmetric(2);
  Digraph k3 = Digraph::CompleteSymmetric(3);
  Graph enc_c5 = EncodeAsRdf(c5, &dict, e);
  Graph enc_c6 = EncodeAsRdf(c6, &dict, e);
  Graph enc_k2 = EncodeAsRdf(k2, &dict, e);
  Graph enc_k3 = EncodeAsRdf(k3, &dict, e);

  EXPECT_EQ(IsHomomorphic(c6, k2), HasHomomorphism(enc_c6, enc_k2));
  EXPECT_EQ(IsHomomorphic(c5, k2), HasHomomorphism(enc_c5, enc_k2));
  EXPECT_EQ(IsHomomorphic(c5, k3), HasHomomorphism(enc_c5, enc_k3));
  EXPECT_EQ(IsHomomorphic(k3, c5), HasHomomorphism(enc_k3, enc_c5));
}

TEST(Encode, EntailmentDirectionMatchesTheorem) {
  // H homomorphic to H' iff enc(H') ⊨ enc(H) (proof of Thm 2.9(1)).
  Dictionary dict;
  Term e = dict.Iri("urn:e");
  Digraph c5 = Digraph::SymmetricCycle(5);
  Digraph c6 = Digraph::SymmetricCycle(6);
  Digraph k2 = Digraph::CompleteSymmetric(2);
  Graph enc_c5 = EncodeAsRdf(c5, &dict, e);
  Graph enc_c6 = EncodeAsRdf(c6, &dict, e);
  Graph enc_k2 = EncodeAsRdf(k2, &dict, e);
  EXPECT_TRUE(SimpleEntails(enc_k2, enc_c6));   // C6 → K2 exists
  EXPECT_FALSE(SimpleEntails(enc_k2, enc_c5));  // C5 → K2 impossible (odd)
}

TEST(Encode, IsomorphicGraphsGiveIsomorphicEncodings) {
  Dictionary dict;
  Term e = dict.Iri("urn:e");
  Digraph c4a = Digraph::SymmetricCycle(4);
  Digraph c4b = Digraph::SymmetricCycle(4);
  Graph enc_a = EncodeAsRdf(c4a, &dict, e);
  Graph enc_b = EncodeAsRdf(c4b, &dict, e);
  EXPECT_TRUE(AreIsomorphic(enc_a, enc_b));
}

TEST(Encode, NodeBlanksAreReported) {
  Dictionary dict;
  Term e = dict.Iri("urn:e");
  Digraph path = Digraph::Path(3);
  std::vector<Term> blanks;
  Graph enc = EncodeAsRdf(path, &dict, e, &blanks);
  ASSERT_EQ(blanks.size(), 3u);
  EXPECT_TRUE(enc.Contains(Triple(blanks[0], e, blanks[1])));
  EXPECT_TRUE(enc.Contains(Triple(blanks[1], e, blanks[2])));
}

}  // namespace
}  // namespace swdb
