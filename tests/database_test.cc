#include "query/database.h"

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "normal/normal_form.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

TEST(Database, InsertAndQueryText) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("cat sc mammal .\n"
                            "mammal sc animal .\n"
                            "tom type cat .\n")
                  .ok());
  EXPECT_EQ(db.size(), 3u);
  Result<Graph> ans = db.ExecuteQuery(
      "head: ?X isAn animal .\n"
      "body: ?X type animal .\n");
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans->Contains(
      Triple(dict.Iri("tom"), dict.Iri("isAn"), dict.Iri("animal"))));
}

TEST(Database, EntailsDelegatesToRdfs) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("p dom c .\nx p y .").ok());
  EXPECT_TRUE(db.Entails(Data(&dict, "x type c .")));
  EXPECT_FALSE(db.Entails(Data(&dict, "y type c .")));
}

TEST(Database, NormalizedIsCachedUntilMutation) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a sc b .").ok());
  const Graph& first = db.Normalized();
  const Graph& second = db.Normalized();
  EXPECT_EQ(&first, &second);  // same cached object
  EXPECT_EQ(first, NormalForm(db.graph()));
  db.Insert(Triple(dict.Iri("b"), vocab::kSc, dict.Iri("c")));
  const Graph& third = db.Normalized();
  EXPECT_TRUE(third.Contains(
      Triple(dict.Iri("a"), vocab::kSc, dict.Iri("c"))));
}

TEST(Database, DuplicateInsertDoesNotInvalidate) {
  Dictionary dict;
  Database db(&dict);
  Triple t(dict.Iri("a"), dict.Iri("p"), dict.Iri("b"));
  EXPECT_TRUE(db.Insert(t));
  const Graph& cached = db.Normalized();
  EXPECT_FALSE(db.Insert(t));
  EXPECT_EQ(&cached, &db.Normalized());
}

TEST(Database, EraseInvalidates) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a sc b .\nb sc c .").ok());
  EXPECT_TRUE(db.Normalized().Contains(
      Triple(dict.Iri("a"), vocab::kSc, dict.Iri("c"))));
  EXPECT_TRUE(db.Erase(Triple(dict.Iri("b"), vocab::kSc, dict.Iri("c"))));
  EXPECT_FALSE(db.Normalized().Contains(
      Triple(dict.Iri("a"), vocab::kSc, dict.Iri("c"))));
}

TEST(Database, PremiseQueriesBypassTheCache) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("paul son Peter .").ok());
  Query q = Q(&dict,
              "head: ?X relative Peter .\n"
              "body: ?X relative Peter .\n"
              "premise: son sp relative .\n");
  Result<std::vector<Graph>> pre = db.PreAnswer(q);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->size(), 1u);
}

TEST(Database, AnswersMatchBareEvaluator) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\na q _:B .").ok());
  Query q = Q(&dict,
              "head: ?X r ?Y .\n"
              "body: ?X p ?Y .\n");
  QueryEvaluator eval(&dict);
  Result<Graph> expected = eval.AnswerUnion(q, db.graph());
  Result<Graph> actual = db.AnswerUnion(q);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(*expected, *actual);
  Result<Graph> merged = db.AnswerMerge(q);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), expected->size());  // ground answers here
}

TEST(Database, ParseErrorsSurface) {
  Dictionary dict;
  Database db(&dict);
  EXPECT_EQ(db.InsertText("a p").code(), StatusCode::kParseError);
  EXPECT_FALSE(db.ExecuteQuery("nonsense").ok());
}

TEST(Database, ClosureOnlyMode) {
  Dictionary dict;
  EvalOptions options;
  options.use_closure_only = true;
  Database db(&dict, options);
  ASSERT_TRUE(db.InsertText("a sc b .").ok());
  EXPECT_EQ(db.Normalized(), RdfsClosure(db.graph()));
}

}  // namespace
}  // namespace swdb
