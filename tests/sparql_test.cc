#include "sparql/pattern.h"

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "query/answer.h"
#include "sparql/mapping.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::G;

class SparqlTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  // The address-book flavor of [34]'s running example.
  Graph db_ = Data(&dict_,
                   "b1 name paul .\n"
                   "b2 name george .\n"
                   "b2 email georgeAtB3 .\n"
                   "b3 name ringo .\n"
                   "b3 email ringoAtM .\n"
                   "b3 web wwwRingo .\n");

  SparqlPattern Bgp(const std::string& text) {
    return SparqlPattern::Bgp(G(&dict_, text));
  }
  Term V(const char* name) { return dict_.Var(name); }
  Term I(const char* name) { return dict_.Iri(name); }
};

TEST_F(SparqlTest, MappingCompatibility) {
  Mapping m1;
  m1.Bind(V("X"), I("a"));
  Mapping m2;
  m2.Bind(V("X"), I("a"));
  m2.Bind(V("Y"), I("b"));
  Mapping m3;
  m3.Bind(V("X"), I("c"));
  EXPECT_TRUE(Compatible(m1, m2));
  EXPECT_FALSE(Compatible(m2, m3));
  EXPECT_TRUE(Compatible(m1, Mapping()));  // empty mapping fits anything
  Mapping merged = MergeMappings(m1, m2);
  EXPECT_EQ(merged.size(), 2u);
}

TEST_F(SparqlTest, BgpMatchesLikeQueryEvaluatorMatchings) {
  SparqlPattern p = Bgp("?X name ?N .");
  Result<MappingSet> rows = EvalPattern(db_, p);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(SparqlTest, AndJoinsOnSharedVariables) {
  SparqlPattern p = SparqlPattern::And(Bgp("?X name ?N ."),
                                       Bgp("?X email ?E ."));
  Result<MappingSet> rows = EvalPattern(db_, p);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // george and ringo have emails
}

TEST_F(SparqlTest, AndWithDisjointVariablesIsCartesian) {
  SparqlPattern p = SparqlPattern::And(Bgp("?X name ?N ."),
                                       Bgp("?Y email ?E ."));
  Result<MappingSet> rows = EvalPattern(db_, p);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);  // 3 names × 2 emails
}

TEST_F(SparqlTest, OptionalKeepsUnextendableRows) {
  SparqlPattern p = SparqlPattern::Optional(Bgp("?X name ?N ."),
                                            Bgp("?X email ?E ."));
  Result<MappingSet> rows = EvalPattern(db_, p);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  int with_email = 0;
  for (const Mapping& m : *rows) {
    with_email += m.IsBound(V("E"));
  }
  EXPECT_EQ(with_email, 2);  // paul survives without an email binding
}

TEST_F(SparqlTest, UnionCollectsBothSides) {
  SparqlPattern p = SparqlPattern::Union(Bgp("?X email ?E ."),
                                         Bgp("?X web ?W ."));
  Result<MappingSet> rows = EvalPattern(db_, p);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // two emails + one web page
}

TEST_F(SparqlTest, FilterBound) {
  SparqlPattern p = SparqlPattern::Filter(
      SparqlPattern::Optional(Bgp("?X name ?N ."), Bgp("?X email ?E .")),
      FilterExpr::Not(FilterExpr::Bound(V("E"))));
  Result<MappingSet> rows = EvalPattern(db_, p);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // exactly the email-less paul
  EXPECT_EQ((*rows)[0].Apply(V("N")), I("paul"));
}

TEST_F(SparqlTest, FilterEqualsConstantAndVariable) {
  SparqlPattern by_constant = SparqlPattern::Filter(
      Bgp("?X name ?N ."), FilterExpr::Equals(V("N"), I("ringo")));
  Result<MappingSet> rows = EvalPattern(db_, by_constant);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].Apply(V("X")), I("b3"));

  // ?X = ?Y across a self-join.
  SparqlPattern self = SparqlPattern::Filter(
      SparqlPattern::And(Bgp("?X name ?N ."), Bgp("?Y email ?E .")),
      FilterExpr::Equals(V("X"), V("Y")));
  Result<MappingSet> same = EvalPattern(db_, self);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->size(), 2u);
}

TEST_F(SparqlTest, FilterUnboundComparisonIsFalse) {
  // ?E unbound in some rows: ?E = x reads false there, and its negation
  // true.
  SparqlPattern opt =
      SparqlPattern::Optional(Bgp("?X name ?N ."), Bgp("?X email ?E ."));
  SparqlPattern eq = SparqlPattern::Filter(
      opt, FilterExpr::Equals(V("E"), I("georgeAtB3")));
  Result<MappingSet> rows = EvalPattern(db_, eq);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(SparqlTest, OptIsNotAssociative) {
  // [34]'s famous example: ((P1 OPT P2) OPT P3) ≠ (P1 OPT (P2 OPT P3))
  // with P1 = (?X,name,paul), P2 = (?Y,name,george), P3 = (?X,email,?Z).
  Dictionary dict;
  Graph d = Data(&dict,
                 "B1 name paul .\n"
                 "B2 name george .\n"
                 "B2 email georgeAtB3 .\n");
  auto bgp = [&dict](const std::string& text) {
    return SparqlPattern::Bgp(*ParseGraph(text, &dict, true));
  };
  SparqlPattern p1 = bgp("?X name paul .");
  SparqlPattern p2 = bgp("?Y name george .");
  SparqlPattern p3 = bgp("?X email ?Z .");

  Result<MappingSet> left_grouped = EvalPattern(
      d, SparqlPattern::Optional(SparqlPattern::Optional(p1, p2), p3));
  Result<MappingSet> right_grouped = EvalPattern(
      d, SparqlPattern::Optional(p1, SparqlPattern::Optional(p2, p3)));
  ASSERT_TRUE(left_grouped.ok() && right_grouped.ok());

  // Left grouping: {X=B1} joins {Y=B2}, then P3 (X=B2,...) is
  // incompatible → {{X=B1, Y=B2}}.
  ASSERT_EQ(left_grouped->size(), 1u);
  EXPECT_TRUE((*left_grouped)[0].IsBound(dict.Var("Y")));
  // Right grouping: (P2 OPT P3) = {{Y=B2, X=B2, Z=…}}, incompatible with
  // {X=B1} → bare {{X=B1}}.
  ASSERT_EQ(right_grouped->size(), 1u);
  EXPECT_FALSE((*right_grouped)[0].IsBound(dict.Var("Y")));
}

TEST_F(SparqlTest, SelectProjects) {
  SparqlPattern p = Bgp("?X email ?E .");
  Result<MappingSet> rows = EvalSelect(db_, p, {V("X")});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  for (const Mapping& m : *rows) {
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.IsBound(V("X")));
  }
}

TEST_F(SparqlTest, ProjectionCanCollapseRows) {
  // b3 has both email and web; projecting to ?X collapses duplicates.
  SparqlPattern p = SparqlPattern::Union(Bgp("?X email ?E ."),
                                         Bgp("?X web ?W ."));
  Result<MappingSet> rows = EvalSelect(db_, p, {V("X")});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // b2, b3
}

TEST_F(SparqlTest, RdfsAwareEvaluationOverClosure) {
  Dictionary dict;
  Graph schema = Data(&dict,
                      "writes sp creates .\n"
                      "john writes hamlet .\n");
  SparqlPattern p =
      SparqlPattern::Bgp(*ParseGraph("?X creates ?W .", &dict, true));
  Result<MappingSet> raw = EvalPattern(schema, p);
  Result<MappingSet> inferred = EvalPattern(RdfsClosure(schema), p);
  ASSERT_TRUE(raw.ok() && inferred.ok());
  EXPECT_TRUE(raw->empty());
  EXPECT_EQ(inferred->size(), 1u);
}

TEST_F(SparqlTest, ValidationRejectsBlankNodesInBgp) {
  Dictionary dict;
  Graph bad{Triple(dict.Blank("B"), dict.Iri("p"), dict.Var("X"))};
  SparqlPattern p = SparqlPattern::Bgp(bad);
  EXPECT_FALSE(p.Validate().ok());
  Result<MappingSet> rows = EvalPattern(Graph(), p);
  EXPECT_FALSE(rows.ok());
}

TEST_F(SparqlTest, VariablesCollectsAcrossTree) {
  SparqlPattern p = SparqlPattern::Optional(
      Bgp("?X name ?N ."),
      SparqlPattern::Union(Bgp("?X email ?E ."), Bgp("?X web ?W .")));
  std::vector<Term> vars = p.Variables();
  EXPECT_EQ(vars.size(), 4u);
}

TEST_F(SparqlTest, SetAlgebraOnHandBuiltSets) {
  Mapping a;
  a.Bind(V("X"), I("1"));
  Mapping b;
  b.Bind(V("Y"), I("2"));
  Mapping c;
  c.Bind(V("X"), I("3"));
  MappingSet s1{a, c};
  MappingSet s2{b};
  EXPECT_EQ(JoinSets(s1, s2).size(), 2u);       // both compatible with b
  EXPECT_EQ(DiffSets(s1, s2).size(), 0u);       // everything extends
  EXPECT_EQ(LeftJoinSets(s1, s2).size(), 2u);
  EXPECT_EQ(UnionSets(s1, s1).size(), 2u);      // dedup
  MappingSet clash{a};
  MappingSet other{c};
  EXPECT_EQ(JoinSets(clash, other).size(), 0u);  // X: 1 vs 3
  EXPECT_EQ(DiffSets(clash, other).size(), 1u);
}

}  // namespace
}  // namespace swdb
