// E12 (extension) — SPARQL-algebra evaluation on top of the core model,
// following the semantics of the authors' follow-up [34]. Measures the
// cost drivers the complexity results there predict: join fan-out,
// OPTIONAL nesting depth, union width, and the overhead of RDFS-aware
// evaluation (closing first).
//
// Series:
//   * BgpJoin/k          — k-triple star BGP over a random graph.
//   * OptionalChain/d    — d nested OPTIONALs.
//   * UnionFan/w         — a UNION of w single-triple branches.
//   * FilterSelectivity/n— FILTER over growing solution sets.
//   * RdfsAware/n        — closure + query vs raw query.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "sparql/pattern.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

Graph MakeData(uint32_t n, Dictionary* dict, uint64_t seed) {
  Rng rng(seed);
  RandomGraphSpec spec;
  spec.num_nodes = n;
  spec.num_triples = 3 * n;
  spec.num_predicates = 4;
  spec.blank_ratio = 0;
  return RandomSimpleGraph(spec, dict, &rng);
}

void BM_BgpJoin(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph data = MakeData(40, &dict, 301);
  Graph bgp;
  Term center = dict.Var("c");
  for (uint32_t i = 0; i < k; ++i) {
    bgp.Insert(center, dict.Iri(NumberedName("urn:p", i % 4)),
               dict.Var(NumberedName("l", i)));
  }
  SparqlPattern p = SparqlPattern::Bgp(bgp);
  size_t rows = 0;
  for (auto _ : state) {
    Result<MappingSet> result = EvalPattern(data, p);
    rows = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["|q|"] = k;
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_BgpJoin)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_OptionalChain(benchmark::State& state) {
  const uint32_t depth = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph data = MakeData(40, &dict, 303);
  SparqlPattern p = SparqlPattern::Bgp(
      Graph{Triple(dict.Var("x0"), dict.Iri("urn:p0"), dict.Var("x1"))});
  for (uint32_t d = 0; d < depth; ++d) {
    SparqlPattern next = SparqlPattern::Bgp(
        Graph{Triple(dict.Var(NumberedName("x", d + 1)),
                     dict.Iri(NumberedName("urn:p", (d + 1) % 4)),
                     dict.Var(NumberedName("x", d + 2)))});
    p = SparqlPattern::Optional(std::move(p), std::move(next));
  }
  size_t rows = 0;
  for (auto _ : state) {
    Result<MappingSet> result = EvalPattern(data, p);
    rows = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["depth"] = depth;
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_OptionalChain)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_UnionFan(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph data = MakeData(40, &dict, 305);
  SparqlPattern p = SparqlPattern::Bgp(
      Graph{Triple(dict.Var("s"), dict.Iri("urn:p0"), dict.Var("o"))});
  for (uint32_t w = 1; w < width; ++w) {
    SparqlPattern branch = SparqlPattern::Bgp(
        Graph{Triple(dict.Var("s"), dict.Iri(NumberedName("urn:p", w % 4)),
                     dict.Var("o"))});
    p = SparqlPattern::Union(std::move(p), std::move(branch));
  }
  size_t rows = 0;
  for (auto _ : state) {
    Result<MappingSet> result = EvalPattern(data, p);
    rows = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["width"] = width;
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_UnionFan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FilterSelectivity(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph data = MakeData(n, &dict, 307);
  SparqlPattern p = SparqlPattern::Filter(
      SparqlPattern::Bgp(Graph{
          Triple(dict.Var("s"), dict.Iri("urn:p0"), dict.Var("o"))}),
      FilterExpr::Not(
          FilterExpr::Equals(dict.Var("s"), dict.Var("o"))));
  size_t rows = 0;
  for (auto _ : state) {
    Result<MappingSet> result = EvalPattern(data, p);
    rows = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["|D|"] = static_cast<double>(data.size());
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_FilterSelectivity)->Arg(20)->Arg(80)->Arg(320)->Arg(1280);

void BM_RdfsAware(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(309);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 5 + 2;
  spec.num_properties = n / 8 + 2;
  spec.num_instances = n;
  spec.num_facts = 2 * n;
  Graph data = SchemaWorkload(spec, &dict, &rng);
  SparqlPattern p = SparqlPattern::Bgp(
      Graph{Triple(dict.Var("x"), vocab::kType, dict.Var("c"))});
  size_t rows = 0;
  for (auto _ : state) {
    Graph closed = RdfsClosure(data);
    Result<MappingSet> result = EvalPattern(closed, p);
    rows = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["|D|"] = static_cast<double>(data.size());
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_RdfsAware)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
