// E11 (ablations) — design choices called out in DESIGN.md, measured:
//
//   * ClosureWorklist/n vs ClosureNaive/n — the indexed worklist fixpoint
//     against the rule-enumeration reference implementation.
//   * ClosureFull/n vs ClosurePreMarin/n vs ClosureNoReflexivity/n —
//     rule-subset cost and output-size deltas (|cl| counters).
//   * SolverDynamic/k vs SolverStatic/k — most-constrained-first
//     ordering against static order on join-heavy chain patterns.
//   * CoreComponentwise/n — blank-component decomposition of the
//     leanness search (the whole-graph alternative is the same search
//     with one artificial component; measured via a star of components).

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "normal/core.h"
#include "rdf/hom.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

Graph MakeSchema(uint32_t n, Dictionary* dict, uint64_t seed) {
  Rng rng(seed);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 5 + 2;
  spec.num_properties = n / 8 + 2;
  spec.num_instances = n;
  spec.num_facts = 2 * n;
  return SchemaWorkload(spec, dict, &rng);
}

void BM_ClosureWorklist(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = MakeSchema(n, &dict, 91);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RdfsClosure(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_ClosureWorklist)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_ClosureNaive(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = MakeSchema(n, &dict, 91);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RdfsClosureNaive(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_ClosureNaive)->Arg(10)->Arg(20)->Arg(40);

void RunRuleSet(benchmark::State& state, const RuleSet& rules) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = MakeSchema(n, &dict, 93);
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph cl = RdfsClosureWithRules(g, rules);
    closure_size = cl.size();
    benchmark::DoNotOptimize(cl);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
}

void BM_ClosureFull(benchmark::State& state) {
  RunRuleSet(state, RuleSet::All());
}
BENCHMARK(BM_ClosureFull)->Arg(40)->Arg(80)->Arg(160);

void BM_ClosurePreMarin(benchmark::State& state) {
  RunRuleSet(state, RuleSet::PreMarin());
}
BENCHMARK(BM_ClosurePreMarin)->Arg(40)->Arg(80)->Arg(160);

void BM_ClosureNoReflexivity(benchmark::State& state) {
  RuleSet rules;
  rules.reflexivity = false;
  RunRuleSet(state, rules);
}
BENCHMARK(BM_ClosureNoReflexivity)->Arg(40)->Arg(80)->Arg(160);

void RunSolver(benchmark::State& state, bool static_order) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(95);
  RandomGraphSpec spec;
  spec.num_nodes = 40;
  spec.num_triples = 200;
  spec.num_predicates = 2;
  spec.blank_ratio = 0;
  Graph data = RandomSimpleGraph(spec, &dict, &rng);
  // A selective chain anchored on a constant at the END: dynamic
  // ordering starts from the anchor; static order must join front-first.
  Term p = dict.Iri("urn:p0");
  Graph pattern;
  Term anchor = data[0].s;
  std::vector<Term> vars;
  for (uint32_t i = 0; i <= k; ++i) {
    vars.push_back(dict.Var(NumberedName("h", i)));
  }
  for (uint32_t i = 0; i < k; ++i) {
    pattern.Insert(vars[i], p, vars[i + 1]);
  }
  pattern.Insert(vars[k], p, anchor);
  MatchOptions options;
  options.static_order = static_order;
  options.max_steps = 200'000'000;
  for (auto _ : state) {
    PatternMatcher matcher(pattern.triples(), &data, options);
    size_t solutions = 0;
    Status s = matcher.Enumerate([&solutions](const TermMap&) {
      ++solutions;
      return true;
    });
    benchmark::DoNotOptimize(s);
    state.counters["solutions"] = static_cast<double>(solutions);
  }
  state.counters["|q|"] = k;
}

void BM_SolverDynamic(benchmark::State& state) {
  RunSolver(state, /*static_order=*/false);
}
BENCHMARK(BM_SolverDynamic)->Arg(2)->Arg(4)->Arg(6);

void BM_SolverStatic(benchmark::State& state) {
  RunSolver(state, /*static_order=*/true);
}
BENCHMARK(BM_SolverStatic)->Arg(2)->Arg(4)->Arg(6);

void BM_CoreComponentwise(benchmark::State& state) {
  // n independent small blank components: component decomposition makes
  // each probe pattern O(1) instead of O(n).
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    Term s = dict.Iri(NumberedName("s", i));
    Term blank = dict.FreshBlank();
    g.Insert(s, p, blank);
    g.Insert(blank, p, dict.Iri(NumberedName("o", i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_CoreComponentwise)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
