// E4 — Thm 3.12: leanness testing is coNP-complete and core
// computation is hard; but structured instances stay tractable.
//
// Series reported:
//   * LeanBlankTree/n       — blank trees (no blank cycles): fast.
//   * LeanWithRedundancy/n  — graphs with folding opportunities.
//   * CoreRedundant/n       — core computation, n redundant blanks.
//   * CoreEncodedCycle/n    — enc(C_{2n}) ∪ enc(K2): the graph-core
//                             gadget of the Thm 3.12 reduction — the
//                             even cycle folds onto the edge.
//   * LeanCliqueGadget/k    — enc(K_k) plus a pendant blank: the
//                             exponential shape.
//
// E16 — parallel core/nf strong scaling (the t-argument series; t = 1
// is the sequential engine, t > 1 a ThreadPool with t workers; results
// are bit-identical at every t):
//   * CoreLeanGadgets/t     — many anchored clique gadgets, all lean:
//                             every component must be refuted, the
//                             embarrassingly parallel shape (acceptance
//                             series for scripts/bench_core.sh).
//   * NormalFormLeanGadgets/t — nf(D) = core(cl(D)) end to end on the
//                             same gadgets plus a schema workload.
//   * CoreFoldingChain/t    — components that all fold: each round's
//                             winner is the lowest component, so
//                             speculation is cancelled almost at once —
//                             the honest no-speedup shape.
//   * CoreComponentSweep/n  — fixed 8 workers, n gadgets of fixed
//                             size: how scaling grows with component
//                             count.

#include <benchmark/benchmark.h>

#include <memory>

#include "gen/generators.h"
#include "graphtheory/digraph.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

// Workers for a benchmark t-argument: t = 1 means the sequential engine
// (null pool), matching how callers run without a pool (bench_parallel
// idiom).
std::unique_ptr<ThreadPool> PoolFor(int64_t t) {
  if (t <= 1) return nullptr;
  return std::make_unique<ThreadPool>(static_cast<size_t>(t));
}

// `count` disjoint blank components, each enc(K_k) with a ground anchor
// triple into the clique. The anchor makes each copy rigid (no map onto
// a sibling copy), so the whole graph is lean and Core() must refute a
// homomorphism for every dropped triple of every component — coNP work
// that decomposes perfectly across components.
Graph AnchoredCliqueGadgets(uint32_t count, uint32_t k, Dictionary* dict) {
  Term e = dict->Iri("e");
  Term ap = dict->Iri("anchor");
  Graph g;
  for (uint32_t i = 0; i < count; ++i) {
    std::vector<Term> blanks;
    g.InsertAll(
        EncodeAsRdf(Digraph::CompleteSymmetric(k), dict, e, &blanks));
    g.Insert(dict->Iri(NumberedName("a", i)), ap, blanks[0]);
  }
  return g;
}

// `count` disjoint even-cycle components plus one shared ground K2:
// every component folds onto the ground edge, one per Core() round.
Graph FoldingCycleGadgets(uint32_t count, uint32_t cycle,
                          Dictionary* dict) {
  Term e = dict->Iri("e");
  Graph g = EncodeAsRdf(Digraph::CompleteSymmetric(2), dict, e);
  for (uint32_t i = 0; i < count; ++i) {
    g.InsertAll(EncodeAsRdf(Digraph::SymmetricCycle(cycle), dict, e));
  }
  return g;
}

Graph BlankTree(uint32_t depth, uint32_t fanout, Term p, Dictionary* dict) {
  Graph g;
  std::vector<Term> level{dict->FreshBlank()};
  for (uint32_t d = 0; d < depth; ++d) {
    std::vector<Term> next;
    for (Term parent : level) {
      for (uint32_t f = 0; f < fanout; ++f) {
        Term child = dict->FreshBlank();
        g.Insert(parent, p, child);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  return g;
}

void BM_LeanBlankTree(benchmark::State& state) {
  const uint32_t depth = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = BlankTree(depth, 2, dict.Iri("p"), &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_LeanBlankTree)->Arg(2)->Arg(4)->Arg(6)->Arg(7);

void BM_LeanWithRedundancy(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(17);
  Graph g;
  Term p = dict.Iri("p");
  // Ground base plus n redundant blank specializations.
  for (uint32_t i = 0; i < n; ++i) {
    Term s = dict.Iri(NumberedName("s", i));
    Term o = dict.Iri(NumberedName("o", i));
    g.Insert(s, p, o);
    g.Insert(s, p, dict.FreshBlank());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_LeanWithRedundancy)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CoreRedundant(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  Graph g;
  Term hub = dict.Iri("hub");
  g.Insert(hub, p, dict.Iri("x"));
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(hub, p, dict.FreshBlank());
  }
  size_t core_size = 0;
  for (auto _ : state) {
    Graph core = Core(g);
    core_size = core.size();
    benchmark::DoNotOptimize(core);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|core|"] = static_cast<double>(core_size);
}
BENCHMARK(BM_CoreRedundant)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_CoreEncodedCycle(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  // Even cycle + K2: core folds the cycle onto the edge.
  Graph g = EncodeAsRdf(Digraph::SymmetricCycle(2 * n), &dict, e);
  g.InsertAll(EncodeAsRdf(Digraph::CompleteSymmetric(2), &dict, e));
  size_t core_size = 0;
  for (auto _ : state) {
    Graph core = Core(g);
    core_size = core.size();
    benchmark::DoNotOptimize(core);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|core|"] = static_cast<double>(core_size);
}
BENCHMARK(BM_CoreEncodedCycle)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_LeanOddCycleGadget(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  // enc(C_{2n+1}) is lean (odd symmetric cycles are graph cores, the
  // Hell–Nešetřil gadget behind Thm 3.12), so certifying leanness must
  // refute a homomorphism for every dropped triple — the coNP shape.
  Graph g = EncodeAsRdf(Digraph::SymmetricCycle(2 * n + 1), &dict, e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["cycle"] = 2 * n + 1;
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_LeanOddCycleGadget)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// --- E16: parallel core/nf strong scaling ----------------------------

void BM_CoreLeanGadgets(benchmark::State& state) {
  constexpr uint32_t kGadgets = 64;
  constexpr uint32_t kCliqueSize = 5;
  Dictionary dict;
  Graph g = AnchoredCliqueGadgets(kGadgets, kCliqueSize, &dict);
  g.WarmIndexes();
  std::unique_ptr<ThreadPool> pool = PoolFor(state.range(0));
  size_t core_size = 0;
  for (auto _ : state) {
    Graph core = Core(g, /*witness=*/nullptr, pool.get());
    core_size = core.size();
    benchmark::DoNotOptimize(core);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["components"] = kGadgets;
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|core|"] = static_cast<double>(core_size);
}
BENCHMARK(BM_CoreLeanGadgets)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_NormalFormLeanGadgets(benchmark::State& state) {
  constexpr uint32_t kGadgets = 48;
  constexpr uint32_t kCliqueSize = 5;
  Dictionary dict;
  Rng rng(23);
  SchemaWorkloadSpec spec;
  spec.num_classes = 12;
  spec.num_properties = 8;
  spec.num_instances = 60;
  spec.num_facts = 150;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  g.InsertAll(AnchoredCliqueGadgets(kGadgets, kCliqueSize, &dict));
  std::unique_ptr<ThreadPool> pool = PoolFor(state.range(0));
  size_t nf_size = 0;
  for (auto _ : state) {
    Graph nf = NormalForm(g, pool.get());
    nf_size = nf.size();
    benchmark::DoNotOptimize(nf);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|nf|"] = static_cast<double>(nf_size);
}
BENCHMARK(BM_NormalFormLeanGadgets)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_CoreFoldingChain(benchmark::State& state) {
  constexpr uint32_t kGadgets = 24;
  constexpr uint32_t kCycle = 8;
  Dictionary dict;
  Graph g = FoldingCycleGadgets(kGadgets, kCycle, &dict);
  g.WarmIndexes();
  std::unique_ptr<ThreadPool> pool = PoolFor(state.range(0));
  size_t core_size = 0;
  for (auto _ : state) {
    Graph core = Core(g, /*witness=*/nullptr, pool.get());
    core_size = core.size();
    benchmark::DoNotOptimize(core);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["components"] = kGadgets + 1;
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|core|"] = static_cast<double>(core_size);
}
BENCHMARK(BM_CoreFoldingChain)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_CoreComponentSweep(benchmark::State& state) {
  const uint32_t gadgets = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kCliqueSize = 5;
  Dictionary dict;
  Graph g = AnchoredCliqueGadgets(gadgets, kCliqueSize, &dict);
  g.WarmIndexes();
  ThreadPool pool(8);
  for (auto _ : state) {
    Graph core = Core(g, /*witness=*/nullptr, &pool);
    benchmark::DoNotOptimize(core);
  }
  state.counters["components"] = gadgets;
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_CoreComponentSweep)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
