// E4 — Thm 3.12: leanness testing is coNP-complete and core
// computation is hard; but structured instances stay tractable.
//
// Series reported:
//   * LeanBlankTree/n       — blank trees (no blank cycles): fast.
//   * LeanWithRedundancy/n  — graphs with folding opportunities.
//   * CoreRedundant/n       — core computation, n redundant blanks.
//   * CoreEncodedCycle/n    — enc(C_{2n}) ∪ enc(K2): the graph-core
//                             gadget of the Thm 3.12 reduction — the
//                             even cycle folds onto the edge.
//   * LeanCliqueGadget/k    — enc(K_k) plus a pendant blank: the
//                             exponential shape.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "graphtheory/digraph.h"
#include "normal/core.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

Graph BlankTree(uint32_t depth, uint32_t fanout, Term p, Dictionary* dict) {
  Graph g;
  std::vector<Term> level{dict->FreshBlank()};
  for (uint32_t d = 0; d < depth; ++d) {
    std::vector<Term> next;
    for (Term parent : level) {
      for (uint32_t f = 0; f < fanout; ++f) {
        Term child = dict->FreshBlank();
        g.Insert(parent, p, child);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  return g;
}

void BM_LeanBlankTree(benchmark::State& state) {
  const uint32_t depth = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = BlankTree(depth, 2, dict.Iri("p"), &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_LeanBlankTree)->Arg(2)->Arg(4)->Arg(6)->Arg(7);

void BM_LeanWithRedundancy(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(17);
  Graph g;
  Term p = dict.Iri("p");
  // Ground base plus n redundant blank specializations.
  for (uint32_t i = 0; i < n; ++i) {
    Term s = dict.Iri(NumberedName("s", i));
    Term o = dict.Iri(NumberedName("o", i));
    g.Insert(s, p, o);
    g.Insert(s, p, dict.FreshBlank());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_LeanWithRedundancy)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CoreRedundant(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  Graph g;
  Term hub = dict.Iri("hub");
  g.Insert(hub, p, dict.Iri("x"));
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(hub, p, dict.FreshBlank());
  }
  size_t core_size = 0;
  for (auto _ : state) {
    Graph core = Core(g);
    core_size = core.size();
    benchmark::DoNotOptimize(core);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|core|"] = static_cast<double>(core_size);
}
BENCHMARK(BM_CoreRedundant)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_CoreEncodedCycle(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  // Even cycle + K2: core folds the cycle onto the edge.
  Graph g = EncodeAsRdf(Digraph::SymmetricCycle(2 * n), &dict, e);
  g.InsertAll(EncodeAsRdf(Digraph::CompleteSymmetric(2), &dict, e));
  size_t core_size = 0;
  for (auto _ : state) {
    Graph core = Core(g);
    core_size = core.size();
    benchmark::DoNotOptimize(core);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|core|"] = static_cast<double>(core_size);
}
BENCHMARK(BM_CoreEncodedCycle)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_LeanOddCycleGadget(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  // enc(C_{2n+1}) is lean (odd symmetric cycles are graph cores, the
  // Hell–Nešetřil gadget behind Thm 3.12), so certifying leanness must
  // refute a homomorphism for every dropped triple — the coNP shape.
  Graph g = EncodeAsRdf(Digraph::SymmetricCycle(2 * n + 1), &dict, e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(g));
  }
  state.counters["cycle"] = 2 * n + 1;
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_LeanOddCycleGadget)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
