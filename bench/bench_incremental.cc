// E14 — the incremental maintenance engine vs from-scratch recomputation.
//
// Series reported (all on SchemaWorkload graphs; see EXPERIMENTS.md):
//   * InsertSeriesFull/n        — K single-triple inserts, each followed
//                                 by a full RdfsClosure refixpoint (the
//                                 pre-maintenance Database behaviour).
//   * InsertSeriesDelta/n       — the same series through a persistent
//                                 IncrementalClosure::InsertDelta. The
//                                 per-update time ratio at the largest n
//                                 is the ≥10× acceptance bar.
//   * EraseSeriesFull/n         — K single-triple erases, full refixpoint
//                                 each.
//   * EraseSeriesDRed/n         — the same series via EraseDelta
//                                 (over-delete + re-derive).
//   * IndexPatchInsert/n        — one Graph::Insert + Erase pair with
//                                 warm permutation indexes (in-place
//                                 patching).
//   * IndexRebuildInsert/n      — the same mutation forced through a full
//                                 O(n log n) ×3 index rebuild.
//
// Counters: |G|, |cl|, derived/op (mean new derivations per insert),
// and for the delta series `speedup_hint` = full-series ns from a
// one-shot calibration (informative only; the authoritative ratio is
// computed across series by scripts/bench_incremental.sh).

#include <benchmark/benchmark.h>

#include <vector>

#include "gen/generators.h"
#include "inference/closure.h"
#include "rdf/graph.h"
#include "util/rng.h"

namespace swdb {
namespace {

constexpr int kUpdates = 64;  // single-triple updates per series

SchemaWorkloadSpec SpecFor(uint32_t n) {
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 16 + 4;
  spec.num_properties = n / 32 + 3;
  spec.num_instances = n / 2;
  spec.num_facts = n;
  return spec;
}

// Fresh fact triples over the workload's existing instance/property
// universe, none already present in g.
std::vector<Triple> NovelFacts(const Graph& g, Dictionary* dict, int count,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Term> subjects, objects, props;
  for (const Triple& t : g) {
    if (!vocab::IsRdfsVocab(t.p)) props.push_back(t.p);
    subjects.push_back(t.s);
    objects.push_back(t.o);
  }
  std::vector<Triple> out;
  Graph taken = g;
  while (static_cast<int>(out.size()) < count) {
    Triple t(subjects[rng.Below(subjects.size())],
             props[rng.Below(props.size())],
             objects[rng.Below(objects.size())]);
    if (!t.IsWellFormedData() || !taken.Insert(t)) continue;
    out.push_back(t);
  }
  return out;
}

// --- Closure maintenance: insert series ------------------------------

void BM_InsertSeriesFull(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(n);
  Graph base = SchemaWorkload(SpecFor(n), &dict, &rng);
  std::vector<Triple> updates = NovelFacts(base, &dict, kUpdates, n * 31);
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph g = base;
    for (const Triple& t : updates) {
      g.Insert(t);
      Graph cl = RdfsClosure(g);
      closure_size = cl.size();
      benchmark::DoNotOptimize(cl);
    }
  }
  state.SetItemsProcessed(state.iterations() * kUpdates);
  state.counters["|G|"] = static_cast<double>(base.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
}
BENCHMARK(BM_InsertSeriesFull)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_InsertSeriesDelta(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(n);
  Graph base = SchemaWorkload(SpecFor(n), &dict, &rng);
  std::vector<Triple> updates = NovelFacts(base, &dict, kUpdates, n * 31);
  size_t closure_size = 0;
  size_t derived = 0;
  for (auto _ : state) {
    state.PauseTiming();
    IncrementalClosure inc(base);  // engine build is amortized prep,
    state.ResumeTiming();          // the series is what we measure
    derived = 0;
    for (const Triple& t : updates) {
      ClosureDeltaStats ds;
      inc.InsertDelta(Graph({t}), &ds);
      derived += ds.derived;
    }
    closure_size = inc.closure().size();
    benchmark::DoNotOptimize(inc);
  }
  state.SetItemsProcessed(state.iterations() * kUpdates);
  state.counters["|G|"] = static_cast<double>(base.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
  state.counters["derived/op"] =
      static_cast<double>(derived) / static_cast<double>(kUpdates);
}
BENCHMARK(BM_InsertSeriesDelta)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// --- Closure maintenance: erase series -------------------------------

void BM_EraseSeriesFull(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(n);
  Graph base = SchemaWorkload(SpecFor(n), &dict, &rng);
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph g = base;
    Rng victim_rng(n * 7);
    for (int i = 0; i < kUpdates; ++i) {
      g.Erase(g[victim_rng.Below(g.size())]);
      Graph cl = RdfsClosure(g);
      closure_size = cl.size();
      benchmark::DoNotOptimize(cl);
    }
  }
  state.SetItemsProcessed(state.iterations() * kUpdates);
  state.counters["|G|"] = static_cast<double>(base.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
}
BENCHMARK(BM_EraseSeriesFull)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_EraseSeriesDRed(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(n);
  Graph base = SchemaWorkload(SpecFor(n), &dict, &rng);
  size_t overdeleted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = base;
    IncrementalClosure inc(g);
    state.ResumeTiming();
    Rng victim_rng(n * 7);
    overdeleted = 0;
    for (int i = 0; i < kUpdates; ++i) {
      Triple victim = g[victim_rng.Below(g.size())];
      g.Erase(victim);
      ClosureDeltaStats ds;
      inc.EraseDelta(g, Graph({victim}), &ds);
      overdeleted += ds.overdeleted;
    }
    benchmark::DoNotOptimize(inc);
  }
  state.SetItemsProcessed(state.iterations() * kUpdates);
  state.counters["|G|"] = static_cast<double>(base.size());
  state.counters["overdeleted/op"] =
      static_cast<double>(overdeleted) / static_cast<double>(kUpdates);
}
BENCHMARK(BM_EraseSeriesDRed)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// --- Graph index maintenance: patch vs rebuild -----------------------

void BM_IndexPatchInsert(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(n);
  Graph g = SchemaWorkload(SpecFor(n), &dict, &rng);
  std::vector<Triple> updates = NovelFacts(g, &dict, 64, n * 13);
  g.CountMatches(std::nullopt, vocab::kType, std::nullopt);  // warm indexes
  size_t i = 0;
  for (auto _ : state) {
    const Triple& t = updates[i++ % updates.size()];
    g.Insert(t);  // patches the three warm permutation indexes in place
    g.Erase(t);   // ditto; graph size stays constant across iterations
    benchmark::DoNotOptimize(g);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_IndexPatchInsert)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_IndexRebuildInsert(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(n);
  Graph g = SchemaWorkload(SpecFor(n), &dict, &rng);
  std::vector<Triple> updates = NovelFacts(g, &dict, 64, n * 13);
  size_t i = 0;
  for (auto _ : state) {
    const Triple& t = updates[i++ % updates.size()];
    // InsertAll invalidates the indexes wholesale: the CountMatches after
    // each mutation pays the full O(n log n) ×3 rebuild — the cost every
    // mutation paid before in-place patching existed.
    g.InsertAll(Graph({t}));
    benchmark::DoNotOptimize(
        g.CountMatches(std::nullopt, vocab::kType, std::nullopt));
    g.Erase(t);
    benchmark::DoNotOptimize(
        g.CountMatches(std::nullopt, vocab::kType, std::nullopt));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_IndexRebuildInsert)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
