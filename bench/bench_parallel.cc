// E15 — strong scaling of the parallel execution layer.
//
// Every series sweeps the worker count t ∈ {1, 2, 4, 8}; t = 1 is the
// unmodified sequential engine (no pool), so each row's speedup is
// real_time(1) / real_time(t). Results are only meaningful on a machine
// with at least as many cores as workers — scripts/bench_parallel.sh
// records the host core count in the JSON header and skips the scaling
// acceptance check when the hardware cannot express it.
//
// Series reported:
//   * CliqueRefutedMatch/t — enc(K_k) ⊨ enc(K_{k+1}) exhaustive
//     refutation through PatternMatcher's Parallelize mode: the
//     root-level MatchRange of the most-constrained triple is split into
//     chunks, one independent matcher per chunk. The merged result is
//     bit-identical to sequential (tests/parallel_test.cc), so this
//     series prices pure partitioning overhead vs. scaling.
//   * BulkClosure/t — RdfsClosureParallel over a SchemaWorkload graph:
//     round-based semi-naive fixpoint, frontier partitioned across the
//     pool, per-chunk buffers merged in pinned order between rounds.
//   * MixedServing/t — the Database serving shape: t reader threads
//     stream EntailsTriple/Entails probes through epoch-tagged
//     snapshots (lock-free acquire loads) while the writer applies
//     MutationBatches — a 95/5 read/write mix per iteration.
//
// Counters: threads, |G|/|cl| where relevant, and reads+writes per
// iteration for the serving series.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "graphtheory/digraph.h"
#include "inference/closure.h"
#include "query/database.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

// Workers for a given benchmark argument: t = 1 means the sequential
// engine (null pool), matching how callers run without a pool.
std::unique_ptr<ThreadPool> PoolFor(int64_t t) {
  if (t <= 1) return nullptr;
  return std::make_unique<ThreadPool>(static_cast<size_t>(t));
}

// --- Matching: exhaustive clique refutation --------------------------

void BM_CliqueRefutedMatch(benchmark::State& state) {
  constexpr uint32_t k = 6;
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph target = EncodeAsRdf(Digraph::CompleteSymmetric(k), &dict, e);
  Graph pattern = EncodeAsRdf(Digraph::CompleteSymmetric(k + 1), &dict, e);
  std::unique_ptr<ThreadPool> pool = PoolFor(state.range(0));
  MatchOptions options;
  options.max_steps = 500'000'000;
  options.pool = pool.get();
  options.parallel_min_root = 2;  // the root range is small but each
                                  // chunk's subtree is enormous
  for (auto _ : state) {
    PatternMatcher matcher(pattern, &target, options);
    Result<std::optional<TermMap>> r = matcher.FindAny();
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["|G|"] = static_cast<double>(target.size());
}
BENCHMARK(BM_CliqueRefutedMatch)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// --- Closure: bulk fixpoint ------------------------------------------

void BM_BulkClosure(benchmark::State& state) {
  constexpr uint32_t n = 8192;
  Dictionary dict;
  Rng rng(n);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 16 + 4;
  spec.num_properties = n / 32 + 3;
  spec.num_instances = n / 2;
  spec.num_facts = n;
  Graph base = SchemaWorkload(spec, &dict, &rng);
  std::unique_ptr<ThreadPool> pool = PoolFor(state.range(0));
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph cl = pool ? RdfsClosureParallel(base, pool.get())
                    : RdfsClosure(base);
    closure_size = cl.size();
    benchmark::DoNotOptimize(cl);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["|G|"] = static_cast<double>(base.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
}
BENCHMARK(BM_BulkClosure)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// --- Database serving: 95/5 read/write mix ---------------------------

constexpr int kServeWritesPerIter = 16;    // 5% of the op mix
constexpr int kServeReadsPerWrite = 19;    // 95%: 19 reads per write

void BM_MixedServing(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  Dictionary dict;
  Database db(&dict);
  Rng seed_rng(11);
  SchemaWorkloadSpec spec;
  spec.num_classes = 24;
  spec.num_properties = 12;
  spec.num_instances = 512;
  spec.num_facts = 1024;
  db.InsertGraph(SchemaWorkload(spec, &dict, &seed_rng));
  db.Snapshot();  // publish from the writer thread before readers start

  std::vector<Triple> updates;
  {
    Rng rng(23);
    const Graph& g = db.graph();
    for (int i = 0; i < 4 * kServeWritesPerIter; ++i) {
      updates.push_back(g.triples()[rng.Below(g.size())]);
    }
  }
  const int reads_per_thread =
      kServeWritesPerIter * kServeReadsPerWrite / (readers > 0 ? readers : 1);

  size_t u = 0;
  for (auto _ : state) {
    std::atomic<uint64_t> entailed{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&db, &entailed, r, reads_per_thread] {
        Rng rng(100 + static_cast<uint64_t>(r));
        uint64_t hits = 0;
        for (int i = 0; i < reads_per_thread; ++i) {
          std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
          const Graph& cl = snap->closure();
          const Triple probe = cl.triples()[rng.Below(cl.size())];
          hits += snap->EntailsTriple(probe) ? 1 : 0;
        }
        entailed.fetch_add(hits, std::memory_order_relaxed);
      });
    }
    // Writer: the 5% share, erase+reinsert so the graph stays stable
    // across iterations.
    for (int w = 0; w < kServeWritesPerIter; ++w) {
      const Triple& t = updates[u++ % updates.size()];
      MutationBatch batch;
      batch.Erase(t);
      batch.Insert(t);
      db.Apply(batch);
    }
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(entailed.load());
  }
  const int64_t ops_per_iter =
      kServeWritesPerIter + readers * reads_per_thread;
  state.SetItemsProcessed(state.iterations() * ops_per_iter);
  state.counters["threads"] = static_cast<double>(readers);
  state.counters["reads/iter"] =
      static_cast<double>(readers * reads_per_thread);
  state.counters["writes/iter"] = static_cast<double>(kServeWritesPerIter);
}
BENCHMARK(BM_MixedServing)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
