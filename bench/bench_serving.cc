// E21 — end-to-end serving: closed-loop readers vs. one writer on an
// sp2b corpus, reported as Google-Benchmark-shaped JSON (so
// scripts/bench_context.py can stamp host context the same way it does
// for every other BENCH_*.json).
//
// Unlike the micro-benches this is a scenario harness, not a timing
// loop, so it writes the JSON itself: one "benchmarks" entry per
// reader count at the big corpus, plus one checked entry (sampled
// cross-validation against from-scratch evaluation on the same
// snapshot) at a smaller corpus. Exits nonzero when any served answer
// mismatched its referee or any request errored — that makes the
// binary usable as a CI smoke gate, not just a number source.
//
// Usage:
//   bench_serving [--triples=1000000] [--readers=1,4,8] [--seconds=5]
//                 [--batch=1] [--check_fraction=0]
//                 [--checked_triples=100000] [--checked_fraction=0.25]
//                 [--checked_seconds=3] [--seed=1]

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gen/sp2b.h"
#include "query/database.h"
#include "serve/driver.h"
#include "serve/workload.h"

namespace swdb {
namespace {

struct BenchConfig {
  uint64_t triples = 1'000'000;
  std::vector<int> readers = {1, 4, 8};
  double seconds = 5.0;
  size_t batch = 1;
  double check_fraction = 0.0;
  uint64_t checked_triples = 100'000;
  double checked_fraction = 0.25;
  double checked_seconds = 3.0;
  uint64_t seed = 1;
};

std::vector<int> ParseIntList(const char* s) {
  std::vector<int> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

bool ParseFlags(int argc, char** argv, BenchConfig* cfg) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
      return nullptr;
    };
    if (const char* v = value("--triples")) {
      cfg->triples = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--readers")) {
      cfg->readers = ParseIntList(v);
    } else if (const char* v = value("--seconds")) {
      cfg->seconds = std::strtod(v, nullptr);
    } else if (const char* v = value("--batch")) {
      cfg->batch = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--check_fraction")) {
      cfg->check_fraction = std::strtod(v, nullptr);
    } else if (const char* v = value("--checked_triples")) {
      cfg->checked_triples = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--checked_fraction")) {
      cfg->checked_fraction = std::strtod(v, nullptr);
    } else if (const char* v = value("--checked_seconds")) {
      cfg->checked_seconds = std::strtod(v, nullptr);
    } else if (const char* v = value("--seed")) {
      cfg->seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return false;
    }
  }
  return !cfg->readers.empty();
}

// Fresh corpus + database + mix per run: reader counts are compared on
// identical starting states, not on whatever the previous run's writer
// left behind.
struct Rig {
  std::unique_ptr<Dictionary> dict;
  std::unique_ptr<Sp2bGenerator> gen;
  std::unique_ptr<Database> db;
  std::unique_ptr<WorkloadMix> mix;
};

Rig MakeRig(uint64_t triples, uint64_t seed) {
  Rig rig;
  rig.dict = std::make_unique<Dictionary>();
  Sp2bSpec spec;
  spec.target_triples = triples;
  spec.seed = seed;
  rig.gen = std::make_unique<Sp2bGenerator>(spec, rig.dict.get());
  rig.db = std::make_unique<Database>(rig.dict.get());
  rig.db->InsertGraph(rig.gen->GenerateCorpus());
  rig.mix = std::make_unique<WorkloadMix>(*rig.gen, rig.dict.get());
  return rig;
}

void EmitEntry(const char* name, uint64_t triples, int readers,
               const DriverReport& r, bool* first) {
  if (!*first) std::printf(",\n");
  *first = false;
  std::printf(
      "  {\n"
      "   \"name\": \"%s/%" PRIu64 "/readers:%d\",\n"
      "   \"run_type\": \"aggregate\",\n"
      "   \"iterations\": %" PRIu64 ",\n"
      "   \"real_time\": %.1f,\n"
      "   \"time_unit\": \"us\",\n"
      "   \"qps\": %.1f,\n"
      "   \"mean_us\": %.1f,\n"
      "   \"p50_us\": %.1f,\n"
      "   \"p95_us\": %.1f,\n"
      "   \"p99_us\": %.1f,\n"
      "   \"max_us\": %.1f,\n"
      "   \"ops\": %" PRIu64 ",\n"
      "   \"answers\": %" PRIu64 ",\n"
      "   \"errors\": %" PRIu64 ",\n"
      "   \"checks\": %" PRIu64 ",\n"
      "   \"mismatches\": %" PRIu64 ",\n"
      "   \"mean_snapshot_lag\": %.3f,\n"
      "   \"max_snapshot_lag\": %" PRIu64 ",\n"
      "   \"view_hits\": %" PRIu64 ",\n"
      "   \"view_misses\": %" PRIu64 ",\n"
      "   \"batch_view_hits\": %" PRIu64 ",\n"
      "   \"snapshot_nf_builds\": %" PRIu64 ",\n"
      "   \"snapshot_publishes\": %" PRIu64 ",\n"
      "   \"writer_batches\": %" PRIu64 ",\n"
      "   \"writer_inserts\": %" PRIu64 ",\n"
      "   \"writer_erases\": %" PRIu64 ",\n"
      "   \"final_triples\": %" PRIu64 "\n"
      "  }",
      name, triples, readers, r.ops, r.p50_us, r.qps, r.mean_us, r.p50_us,
      r.p95_us, r.p99_us, r.max_us, r.ops, r.answers, r.errors, r.checks,
      r.mismatches, r.mean_snapshot_lag, r.max_snapshot_lag, r.view_hits,
      r.view_misses, r.batch_view_hits, r.snapshot_nf_builds,
      r.snapshot_publishes, r.writer_batches, r.writer_inserts,
      r.writer_erases, r.final_triples);
}

int Main(int argc, char** argv) {
  BenchConfig cfg;
  if (!ParseFlags(argc, argv, &cfg)) return 2;

  std::printf(
      "{\n"
      " \"context\": {\n"
      "  \"bench\": \"serving\",\n"
      "  \"triples\": %" PRIu64 ",\n"
      "  \"seconds\": %.1f,\n"
      "  \"batch_size\": %zu,\n"
      "  \"check_fraction\": %.3f,\n"
      "  \"checked_triples\": %" PRIu64 ",\n"
      "  \"checked_fraction\": %.3f,\n"
      "  \"seed\": %" PRIu64 "\n"
      " },\n"
      " \"benchmarks\": [\n",
      cfg.triples, cfg.seconds, cfg.batch, cfg.check_fraction,
      cfg.checked_triples, cfg.checked_fraction, cfg.seed);

  uint64_t mismatches = 0;
  uint64_t errors = 0;
  bool first = true;

  for (const int readers : cfg.readers) {
    Rig rig = MakeRig(cfg.triples, cfg.seed);
    DriverOptions opts;
    opts.readers = readers;
    opts.seconds = cfg.seconds;
    opts.batch_size = cfg.batch;
    opts.check_fraction = cfg.check_fraction;
    opts.seed = cfg.seed;
    TrafficDriver driver(rig.db.get(), rig.gen.get(), rig.mix.get(), opts);
    const DriverReport r = driver.Run();
    EmitEntry("Serving", cfg.triples, readers, r, &first);
    std::fflush(stdout);
    mismatches += r.mismatches;
    errors += r.errors;
  }

  if (cfg.checked_triples > 0 && cfg.checked_fraction > 0) {
    Rig rig = MakeRig(cfg.checked_triples, cfg.seed);
    DriverOptions opts;
    opts.readers = 4;
    opts.seconds = cfg.checked_seconds;
    opts.batch_size = cfg.batch;
    opts.check_fraction = cfg.checked_fraction;
    opts.seed = cfg.seed;
    TrafficDriver driver(rig.db.get(), rig.gen.get(), rig.mix.get(), opts);
    const DriverReport r = driver.Run();
    EmitEntry("ServingChecked", cfg.checked_triples, 4, r, &first);
    mismatches += r.mismatches;
    errors += r.errors;
  }

  std::printf("\n ]\n}\n");
  std::fflush(stdout);

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr,
                 "bench_serving: %" PRIu64 " mismatches, %" PRIu64
                 " errors — served answers diverged from their referees\n",
                 mismatches, errors);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace swdb

int main(int argc, char** argv) { return swdb::Main(argc, argv); }
