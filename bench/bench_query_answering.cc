// E6 — Thm 6.1: query-answer emptiness is NP-complete in the query and
// polynomial in the data; the answer set is bounded by |D|^|q|.
//
// Series reported:
//   * DataComplexity/n    — fixed 3-triple query, growing database:
//                           polynomial growth.
//   * QueryComplexity/k   — fixed database, growing chain query:
//                           the match count (and work) grows with k.
//   * StarQuery/k         — star-shaped bodies: answer count approaches
//                           the |D|^|q| bound; reported as a counter.
//   * WithRdfsInference/n — answering over nf(D): inference-dominated.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "query/answer.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

Graph MakeDb(uint32_t n, Dictionary* dict, uint64_t seed) {
  Rng rng(seed);
  RandomGraphSpec spec;
  spec.num_nodes = n;
  spec.num_triples = 3 * n;
  spec.num_predicates = 3;
  spec.blank_ratio = 0.1;
  return RandomSimpleGraph(spec, dict, &rng);
}

Query ChainQuery(uint32_t k, Term p, Dictionary* dict) {
  Query q;
  for (uint32_t i = 0; i < k; ++i) {
    q.body.Insert(dict->Var(NumberedName("c", i)), p,
                  dict->Var(NumberedName("c", i + 1)));
  }
  q.head = q.body;
  return q;
}

Query StarQuery(uint32_t k, Term p, Dictionary* dict) {
  Query q;
  Term center = dict->Var("center");
  for (uint32_t i = 0; i < k; ++i) {
    q.body.Insert(center, p, dict->Var(NumberedName("leaf", i)));
  }
  q.head = q.body;
  return q;
}

void BM_DataComplexity(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph db = MakeDb(n, &dict, 41);
  Query q = ChainQuery(3, dict.Iri("urn:p0"), &dict);
  QueryEvaluator eval(&dict);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(pre);
  }
  state.counters["|D|"] = static_cast<double>(db.size());
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_DataComplexity)->Arg(20)->Arg(40)->Arg(80)->Arg(160)->Arg(320);

void BM_QueryComplexity(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph db = MakeDb(30, &dict, 43);
  Query q = ChainQuery(k, dict.Iri("urn:p0"), &dict);
  QueryEvaluator eval(&dict);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(pre);
  }
  state.counters["|q|"] = k;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_QueryComplexity)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_StarQuery(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph db = MakeDb(12, &dict, 47);
  Query q = StarQuery(k, dict.Iri("urn:p0"), &dict);
  QueryEvaluator eval(&dict);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(pre);
  }
  state.counters["|q|"] = k;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_StarQuery)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_CliqueQueryRefutation(benchmark::State& state) {
  // The genuine NP shape of Thm 6.1's query-complexity direction: a
  // k-clique body over a triangle-free-ish database must be refuted
  // exhaustively, so emptiness testing grows exponentially in |q|.
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  // Turán-style database: complete 4-partite with 4 nodes per part.
  // Clique number 4, so k ≤ 4 has answers while k ≥ 5 must be refuted
  // exhaustively — the emptiness cliff of Thm 6.1.
  Graph db;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      if (i % 4 == j % 4) continue;  // same part: no edge
      db.Insert(dict.Iri(NumberedName("n", i)), p,
                dict.Iri(NumberedName("n", j)));
    }
  }
  Query q;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = 0; j < k; ++j) {
      if (i != j) {
        q.body.Insert(dict.Var(NumberedName("c", i)), p,
                      dict.Var(NumberedName("c", j)));
      }
    }
  }
  q.head = q.body;
  QueryEvaluator eval(&dict);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(pre);
  }
  state.counters["k"] = k;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_CliqueQueryRefutation)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_WithRdfsInference(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(53);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 4 + 2;
  spec.num_properties = n / 8 + 2;
  spec.num_instances = n;
  spec.num_facts = 2 * n;
  Graph db = SchemaWorkload(spec, &dict, &rng);
  Query q;
  q.body.Insert(dict.Var("X"), vocab::kType, dict.Var("C"));
  q.head = q.body;
  QueryEvaluator eval(&dict);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(pre);
  }
  state.counters["|D|"] = static_cast<double>(db.size());
  state.counters["typed"] = static_cast<double>(answers);
}
BENCHMARK(BM_WithRdfsInference)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
