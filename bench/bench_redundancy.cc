// E9 — Thm 6.2 vs 6.3: deciding whether a union-semantics answer is
// lean is coNP-complete in |D|, but for merge semantics the
// blank-disjointness of single answers gives a polynomial algorithm.
//
// Series reported:
//   * UnionLeanGeneral/n   — general leanness test on a union answer
//                            whose blanks are entangled.
//   * MergeLeanFast/n      — the Thm 6.3 single-maps algorithm on the
//                            same number of (disjoint) answers.
//   * MergeEliminate/n     — full redundancy elimination under merge
//                            semantics.
//   * UnionLeanHard/k      — odd-cycle union answers: the coNP shape.

#include <benchmark/benchmark.h>

#include "graphtheory/digraph.h"
#include "normal/core.h"
#include "query/redundancy.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

// n single answers over one predicate: half ground, half with blanks
// subsumed by the ground ones.
std::vector<Graph> MakeAnswers(uint32_t n, Dictionary* dict) {
  std::vector<Graph> answers;
  Term p = dict->Iri("p");
  for (uint32_t i = 0; i < n; ++i) {
    Term s = dict->Iri(NumberedName("s", i));
    if (i % 2 == 0) {
      answers.push_back(Graph{Triple(s, p, dict->Iri("o"))});
    } else {
      answers.push_back(Graph{Triple(s, p, dict->FreshBlank())});
    }
  }
  return answers;
}

void BM_UnionLeanGeneral(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  std::vector<Graph> answers = MakeAnswers(n, &dict);
  Graph merged;
  for (const Graph& g : answers) merged.InsertAll(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(merged));
  }
  state.counters["answers"] = n;
}
BENCHMARK(BM_UnionLeanGeneral)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_MergeLeanFast(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  std::vector<Graph> answers = MakeAnswers(n, &dict);
  for (auto _ : state) {
    Result<bool> lean = IsMergeAnswerLean(answers);
    benchmark::DoNotOptimize(lean);
  }
  state.counters["answers"] = n;
}
BENCHMARK(BM_MergeLeanFast)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_MergeEliminate(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  std::vector<Graph> answers = MakeAnswers(n, &dict);
  size_t kept = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> reduced = EliminateMergeRedundancy(answers);
    kept = reduced.ok() ? reduced->size() : 0;
    benchmark::DoNotOptimize(reduced);
  }
  state.counters["answers"] = n;
  state.counters["kept"] = static_cast<double>(kept);
}
BENCHMARK(BM_MergeEliminate)->Arg(8)->Arg(32)->Arg(64)->Arg(128);

void BM_UnionLeanHard(benchmark::State& state) {
  // A union answer shaped like an odd symmetric cycle: blanks are
  // entangled across single answers, so only the general coNP test
  // applies, and it must refute a homomorphism per triple.
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph merged = EncodeAsRdf(Digraph::SymmetricCycle(2 * k + 1), &dict, e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLean(merged));
  }
  state.counters["cycle"] = 2 * k + 1;
}
BENCHMARK(BM_UnionLeanHard)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
