// E7 — Thm 5.6: both containment notions are NP-complete for
// premise-free queries; the characterizations of Thm 5.5 decide them
// with one homomorphism search (⊑p) or an enumeration (⊑m).
//
// Series reported:
//   * StandardPositive/k   — chain-into-generalization pairs: the
//                            witnessing θ is found fast.
//   * StandardNegative/k   — clique-pattern pairs with no θ: the
//                            exhaustive refutation grows with k.
//   * EntailmentBased/k    — ⊑m on the same positives: enumerates all θ
//                            and one entailment test.
//   * WithRdfsBody/n       — bodies with sc-chains: nf(B) computation
//                            dominates.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "query/containment.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

// q: chain of k concrete-ish triples; q': same chain fully generalized.
std::pair<Query, Query> ChainPair(uint32_t k, Dictionary* dict) {
  Query q;
  Term p = dict->Iri("p");
  for (uint32_t i = 0; i < k; ++i) {
    q.body.Insert(dict->Iri(NumberedName("n", i)), p,
                  dict->Var(NumberedName("v", i)));
  }
  q.head = q.body;
  Query q_prime;
  for (uint32_t i = 0; i < k; ++i) {
    q_prime.body.Insert(dict->Var(NumberedName("s", i)), p,
                        dict->Var(NumberedName("v", i)));
  }
  q_prime.head = q_prime.body;
  return {q, q_prime};
}

void BM_StandardPositive(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  auto [q, q_prime] = ChainPair(k, &dict);
  for (auto _ : state) {
    Result<bool> r = ContainedStandard(q, q_prime, &dict);
    benchmark::DoNotOptimize(r);
  }
  state.counters["|B|"] = k;
}
BENCHMARK(BM_StandardPositive)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_StandardNegative(benchmark::State& state) {
  // q: an k-clique over distinct constants; q': a (k+1)-clique of
  // variables — θ(B') ⊆ nf(B) forces a (k+1)-clique into k nodes with
  // no self-loops: exhaustive refutation.
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  Query q;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = 0; j < k; ++j) {
      if (i != j) {
        q.body.Insert(dict.Iri(NumberedName("n", i)), p,
                      dict.Iri(NumberedName("n", j)));
      }
    }
  }
  q.head = Graph{Triple(dict.Iri("n0"), p, dict.Iri("n1"))};
  Query q_prime;
  for (uint32_t i = 0; i <= k; ++i) {
    for (uint32_t j = 0; j <= k; ++j) {
      if (i != j) {
        q_prime.body.Insert(dict.Var(NumberedName("x", i)), p,
                            dict.Var(NumberedName("x", j)));
      }
    }
  }
  q_prime.head = Graph{Triple(dict.Var("x0"), p, dict.Var("x1"))};
  for (auto _ : state) {
    Result<bool> r = ContainedStandard(q, q_prime, &dict);
    benchmark::DoNotOptimize(r);
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_StandardNegative)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_EntailmentBased(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  auto [q, q_prime] = ChainPair(k, &dict);
  for (auto _ : state) {
    Result<bool> r = ContainedEntailment(q, q_prime, &dict);
    benchmark::DoNotOptimize(r);
  }
  state.counters["|B|"] = k;
}
BENCHMARK(BM_EntailmentBased)->Arg(2)->Arg(4)->Arg(6);

void BM_WithRdfsBody(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  // q's body: an sc-chain of length n plus endpoints query.
  Query q;
  for (uint32_t i = 0; i < n; ++i) {
    q.body.Insert(dict.Iri(NumberedName("c", i)), vocab::kSc,
                  dict.Iri(NumberedName("c", i + 1)));
  }
  q.body.Insert(dict.Var("X"), vocab::kType, dict.Iri("c0"));
  q.head = Graph{Triple(dict.Var("X"), vocab::kType, dict.Iri("c0"))};
  // q': instances of the top class (entailed through the chain).
  Query q_prime;
  q_prime.body.Insert(dict.Var("X"), vocab::kType,
                      dict.Iri(NumberedName("c", n)));
  q_prime.head = q_prime.body;
  for (auto _ : state) {
    Result<bool> r = ContainedEntailment(q, q_prime, &dict);
    benchmark::DoNotOptimize(r);
  }
  state.counters["chain"] = n;
}
BENCHMARK(BM_WithRdfsBody)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
