// E19 — materialized pre-answer view layer.
//
// Prices the three claims of the view-cache PR:
//
//   * RepeatedShapeUncached/N    — views disabled: the same two-step
//                                  join is evaluated per iteration, a
//                                  full matcher rerun over nf(D).
//   * RepeatedShapeWarm/N        — views enabled, promoted on first
//                                  sight: iteration 2+ replays the
//                                  materialized answer vector (COW
//                                  graph copies, no matcher).
//   * HitRateSweep/N/K           — K distinct shapes cycling under the
//                                  default promote-after-2 advisor;
//                                  exports the steady-state hit rate.
//   * InsertThenQueryRecompute/N — one fresh triple, then the join,
//                                  views disabled: closure delta
//                                  maintenance + full matcher rerun.
//   * InsertThenQueryPatched/N   — same mutation stream with views on:
//                                  the insert is folded into the view
//                                  by the semi-naive delta patch.
//
// Acceptance is read off N = 100k: RepeatedShapeWarm must be >= 10x
// faster than RepeatedShapeUncached, and InsertThenQueryPatched must
// beat InsertThenQueryRecompute.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "query/database.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace swdb {
namespace {

Term Subj(uint32_t i) { return Term::Iri(vocab::kReservedIris + i); }
Term Pred(uint32_t i) { return Term::Iri(1u << 20 | i); }

constexpr uint32_t kPreds = 8;

// Node ids shared between subject and object positions so the join
// predicate chains: ?X p0 ?Y . ?Y p0 ?Z has real fan-out.
std::vector<Triple> MakeTriples(size_t n) {
  std::mt19937 rng(20260808);
  const uint32_t nodes = static_cast<uint32_t>(n / 16 + 1);
  std::vector<Triple> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(
        Triple(Subj(rng() % nodes), Pred(rng() % kPreds), Subj(rng() % nodes)));
  }
  return v;
}

// head: ?X r ?Z   body: ?X p0 ?Y . ?Y p0 ?Z — the repeated hot shape.
Query TwoStepJoin() {
  Query q;
  q.head = Graph({Triple(Term::Var(0), Pred(kPreds), Term::Var(2))});
  q.body = Graph({Triple(Term::Var(0), Pred(0), Term::Var(1)),
                  Triple(Term::Var(1), Pred(0), Term::Var(2))});
  return q;
}

// head: ?X r ?Y   body: ?X p_k ?Y — the K shapes of the hit-rate sweep.
Query SinglePattern(uint32_t k) {
  Query q;
  q.head = Graph({Triple(Term::Var(0), Pred(kPreds), Term::Var(1))});
  q.body = Graph({Triple(Term::Var(0), Pred(k % kPreds), Term::Var(1))});
  return q;
}

// One prebuilt, closure-warmed Database per (series, n): setup cost is
// paid once, not per benchmark iteration. The dictionary only backs
// fresh-blank minting (terms here are minted by bits), so one shared
// instance is fine.
Database* SetupDb(const std::string& tag, size_t n, bool views_on,
                  uint32_t promote_after) {
  static std::map<std::string, std::unique_ptr<Database>>* dbs =
      new std::map<std::string, std::unique_ptr<Database>>();
  static Dictionary* dict = new Dictionary();
  const std::string key = tag + "/" + std::to_string(n);
  auto it = dbs->find(key);
  if (it == dbs->end()) {
    EvalOptions opts;
    opts.views.enabled = views_on;
    opts.views.promote_after = promote_after;
    it = dbs->emplace(key, std::make_unique<Database>(dict, opts)).first;
    it->second->InsertGraph(Graph(MakeTriples(n)));
    (void)it->second->Normalized();  // closure + nf built outside timing
  }
  return it->second.get();
}

void RepeatedShapeUncached(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database* db = SetupDb("uncached", n, /*views_on=*/false, 1);
  const Query q = TwoStepJoin();
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = db->PreAnswer(q);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(RepeatedShapeUncached)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void RepeatedShapeWarm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database* db = SetupDb("warm", n, /*views_on=*/true, 1);
  const Query q = TwoStepJoin();
  (void)db->PreAnswer(q);  // install outside timing: iterations replay
  db->ResetStats();
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = db->PreAnswer(q);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  const DatabaseStats stats = db->CollectStats();
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["hits"] = static_cast<double>(stats.views.hits);
  state.counters["matchings"] = static_cast<double>(stats.views.matchings);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(RepeatedShapeWarm)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// K shapes cycling round-robin under the default advisor threshold:
// every shape is promoted after its second sight, so the steady-state
// hit rate approaches 1 while the counters expose the warm-up misses.
void HitRateSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  Database* db = SetupDb("sweep" + std::to_string(k), n, /*views_on=*/true, 2);
  std::vector<Query> shapes;
  shapes.reserve(k);
  for (uint32_t i = 0; i < k; ++i) shapes.push_back(SinglePattern(i));
  db->ResetStats();
  uint32_t next = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = db->PreAnswer(shapes[next % k]);
    ++next;
    benchmark::DoNotOptimize(pre.ok());
  }
  const DatabaseStats stats = db->CollectStats();
  const double hits = static_cast<double>(stats.views.hits);
  const double misses = static_cast<double>(stats.views.misses);
  state.counters["hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
  state.counters["installs"] = static_cast<double>(stats.views.installs);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(HitRateSweep)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Unit(benchmark::kMicrosecond);

// The shared mutation stream of the two insert series: a fresh subject
// per step keeps every insert genuinely new, the object stays inside
// the join range so the view's matching set actually moves.
Triple FreshJoinTriple(size_t n, uint32_t step) {
  const uint32_t nodes = static_cast<uint32_t>(n / 16 + 1);
  return Triple(Subj(static_cast<uint32_t>(n) + step), Pred(0),
                Subj(step % nodes));
}

void InsertThenQueryRecompute(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database* db = SetupDb("ins_recompute", n, /*views_on=*/false, 1);
  const Query q = TwoStepJoin();
  (void)db->PreAnswer(q);
  uint32_t step = 0;
  for (auto _ : state) {
    db->Insert(FreshJoinTriple(n, step++));
    Result<std::vector<Graph>> pre = db->PreAnswer(q);
    benchmark::DoNotOptimize(pre.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(InsertThenQueryRecompute)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void InsertThenQueryPatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database* db = SetupDb("ins_patched", n, /*views_on=*/true, 1);
  const Query q = TwoStepJoin();
  (void)db->PreAnswer(q);  // materialize the view before timing
  db->ResetStats();
  uint32_t step = 0;
  for (auto _ : state) {
    db->Insert(FreshJoinTriple(n, step++));
    Result<std::vector<Graph>> pre = db->PreAnswer(q);
    benchmark::DoNotOptimize(pre.ok());
  }
  const DatabaseStats stats = db->CollectStats();
  state.counters["patches"] = static_cast<double>(stats.views.patches);
  state.counters["patch_added"] =
      static_cast<double>(stats.views.patch_added);
  state.counters["invalidations"] =
      static_cast<double>(stats.views.invalidations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(InsertThenQueryPatched)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
