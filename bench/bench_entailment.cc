// E1 — Thm 2.8(2)/2.9: simple entailment is map existence and is
// NP-complete in general.
//
// Series reported:
//   * GroundSubset/n      — ground G2 ⊆ G1: containment check, ~linear.
//   * BlankChainEasy/n    — blank chains: poly despite blanks.
//   * CliqueIntoSelf/k    — enc(K_k) ⊨ enc(K_k): satisfiable search.
//   * CliqueRefuted/k     — enc(K_k) ⊨ enc(K_{k+1}): exhaustive refusal,
//                           the exponential NP-hardness shape.
//   * OddCycleColoring/n  — enc(K3) ⊨ enc(C_{2n+1}): 3-coloring gadget
//                           from the Thm 2.9 reduction.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "graphtheory/digraph.h"
#include "rdf/hom.h"
#include "util/rng.h"

namespace swdb {
namespace {

void BM_GroundSubset(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(7);
  RandomGraphSpec spec;
  spec.num_nodes = n;
  spec.num_triples = 4 * n;
  spec.num_predicates = 4;
  spec.blank_ratio = 0;
  Graph g1 = RandomSimpleGraph(spec, &dict, &rng);
  std::vector<Triple> subset(g1.begin(), g1.begin() + g1.size() / 2);
  Graph g2(subset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEntails(g1, g2));
  }
  state.counters["|G1|"] = static_cast<double>(g1.size());
  state.counters["|G2|"] = static_cast<double>(g2.size());
}
BENCHMARK(BM_GroundSubset)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

void BM_BlankChainEasy(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  Rng rng(11);
  RandomGraphSpec spec;
  spec.num_nodes = 50;
  spec.num_triples = 400;
  spec.num_predicates = 1;
  spec.blank_ratio = 0;
  Graph g1 = RandomSimpleGraph(spec, &dict, &rng);
  Graph g2 = BlankChain(n, p, &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEntails(g1, g2));
  }
  state.counters["chain"] = n;
}
BENCHMARK(BM_BlankChainEasy)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CliqueIntoSelf(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph enc_k = EncodeAsRdf(Digraph::CompleteSymmetric(k), &dict, e);
  Graph enc_k2 = EncodeAsRdf(Digraph::CompleteSymmetric(k), &dict, e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEntails(enc_k, enc_k2));
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_CliqueIntoSelf)->Arg(4)->Arg(6)->Arg(8);

void BM_CliqueRefuted(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph target = EncodeAsRdf(Digraph::CompleteSymmetric(k), &dict, e);
  Graph pattern = EncodeAsRdf(Digraph::CompleteSymmetric(k + 1), &dict, e);
  MatchOptions options;
  options.max_steps = 500'000'000;
  for (auto _ : state) {
    Result<std::optional<TermMap>> r =
        FindHomomorphism(pattern, target, options);
    benchmark::DoNotOptimize(r);
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_CliqueRefuted)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_OddCycleColoring(benchmark::State& state) {
  // enc(K3) ⊨ enc(C_n) iff C_n → K3, true for all n ≥ 3 except nothing —
  // odd cycles are exactly 3-chromatic, so the search must thread the
  // whole cycle: work grows with n.
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph target = EncodeAsRdf(Digraph::CompleteSymmetric(3), &dict, e);
  Graph pattern = EncodeAsRdf(Digraph::SymmetricCycle(2 * n + 1), &dict, e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEntails(target, pattern));
  }
  state.counters["cycle"] = 2 * n + 1;
}
BENCHMARK(BM_OddCycleColoring)->Arg(5)->Arg(20)->Arg(80)->Arg(320);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
