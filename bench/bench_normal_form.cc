// E5 — Thm 3.19/3.20: the normal form nf(G) = core(cl(G)) is unique and
// syntax independent; deciding it is DP-complete.
//
// Series reported:
//   * NormalFormSchema/n      — nf on schema workloads: cost is
//                               dominated by the closure.
//   * NormalFormRedundant/n   — graphs with blank redundancy: the core
//                               phase pays for each foldable blank.
//   * SyntaxIndependence/n    — nf of equivalence-preserving mutations:
//                               the iso-check success rate counter must
//                               stay at 1.0 (Thm 3.19(2)).
//   * IsNormalFormOf/n        — the DP decision problem of Thm 3.20.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "normal/normal_form.h"
#include "rdf/iso.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

Graph MakeSchema(uint32_t n, Dictionary* dict, uint64_t seed) {
  Rng rng(seed);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 5 + 2;
  spec.num_properties = n / 8 + 2;
  spec.num_instances = n;
  spec.num_facts = 2 * n;
  spec.blank_instance_ratio = 0.15;
  return SchemaWorkload(spec, dict, &rng);
}

void BM_NormalFormSchema(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = MakeSchema(n, &dict, 23);
  size_t nf_size = 0;
  for (auto _ : state) {
    Graph nf = NormalForm(g);
    nf_size = nf.size();
    benchmark::DoNotOptimize(nf);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|nf|"] = static_cast<double>(nf_size);
}
BENCHMARK(BM_NormalFormSchema)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_NormalFormRedundant(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term p = dict.Iri("p");
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    Term s = dict.Iri(NumberedName("s", i));
    g.Insert(s, p, dict.Iri(NumberedName("o", i)));
    g.Insert(s, p, dict.FreshBlank());  // folds away in the core
  }
  size_t nf_size = 0;
  for (auto _ : state) {
    Graph nf = NormalForm(g);
    nf_size = nf.size();
    benchmark::DoNotOptimize(nf);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|nf|"] = static_cast<double>(nf_size);
}
BENCHMARK(BM_NormalFormRedundant)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SyntaxIndependence(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(37);
  Graph g = MakeSchema(n, &dict, 29);
  Graph nf_g = NormalForm(g);
  double iso_rate = 0;
  for (auto _ : state) {
    Graph mutated = EquivalentMutation(g, 3, &dict, &rng);
    bool iso = AreIsomorphic(NormalForm(mutated), nf_g);
    iso_rate += iso ? 1 : 0;
    benchmark::DoNotOptimize(iso);
  }
  state.counters["iso_rate"] =
      iso_rate / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SyntaxIndependence)->Arg(10)->Arg(20)->Arg(40);

void BM_IsNormalFormOf(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = MakeSchema(n, &dict, 31);
  Graph candidate = NormalForm(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsNormalFormOf(candidate, g));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_IsNormalFormOf)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
