// E3 — Thm 3.6(3)/(4): closure size is Θ(|G|²) in the worst case, and
// closure membership is decidable in near-linear time without
// materializing.
//
// Series reported:
//   * ScChainClosure/n        — sc-chain: |cl| counter shows the
//                               quadratic growth of Thm 3.6(3).
//   * SpUsesClosure/n         — sp-chain with uses: |cl| ≈ n·uses.
//   * SchemaClosure/n         — realistic schema workloads: closer to
//                               linear.
//   * MembershipDirect/n      — one membership query via the direct
//                               ClosureMembership procedure: ~O(|G|).
//   * MembershipMaterialize/n — the naive alternative: materialize the
//                               full closure, then look up.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

void BM_ScChainClosure(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = ScChain(n, &dict);
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph cl = RdfsClosure(g);
    closure_size = cl.size();
    benchmark::DoNotOptimize(cl);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
  state.counters["ratio"] =
      static_cast<double>(closure_size) / static_cast<double>(g.size());
}
BENCHMARK(BM_ScChainClosure)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SpUsesClosure(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = SpChainWithUses(n, n, &dict);
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph cl = RdfsClosure(g);
    closure_size = cl.size();
    benchmark::DoNotOptimize(cl);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
}
BENCHMARK(BM_SpUsesClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_SchemaClosure(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(13);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 5;
  spec.num_properties = n / 10 + 1;
  spec.num_instances = n;
  spec.num_facts = 2 * n;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  size_t closure_size = 0;
  for (auto _ : state) {
    Graph cl = RdfsClosure(g);
    closure_size = cl.size();
    benchmark::DoNotOptimize(cl);
  }
  state.counters["|G|"] = static_cast<double>(g.size());
  state.counters["|cl|"] = static_cast<double>(closure_size);
}
BENCHMARK(BM_SchemaClosure)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void BM_MembershipDirect(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = ScChain(n, &dict);
  Term first = dict.Iri("urn:c0");
  Term last = dict.Iri(NumberedName("urn:c", n));
  Triple query(first, vocab::kSc, last);  // longest derivation
  for (auto _ : state) {
    // Setup + one query, the Thm 3.6(4) regime (no materialization).
    ClosureMembership membership(g);
    benchmark::DoNotOptimize(membership.Contains(query));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_MembershipDirect)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

void BM_MembershipMaterialize(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g = ScChain(n, &dict);
  Term first = dict.Iri("urn:c0");
  Term last = dict.Iri(NumberedName("urn:c", n));
  Triple query(first, vocab::kSc, last);
  for (auto _ : state) {
    Graph cl = RdfsClosure(g);
    benchmark::DoNotOptimize(cl.Contains(query));
  }
  state.counters["|G|"] = static_cast<double>(g.size());
}
BENCHMARK(BM_MembershipMaterialize)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
