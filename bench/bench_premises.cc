// E8 — Prop. 5.9 / Thm 5.12: premise elimination turns one query with a
// premise into up to exponentially many premise-free queries; this is
// exactly where containment jumps from NP to the Π2P upper bound.
//
// Series reported:
//   * OmegaGrowthPremise/m — |Ωq| as the premise gains m matching facts.
//   * OmegaGrowthBody/k    — |Ωq| as the body gains k premise-matchable
//                            triples: the 2^|B| subset enumeration.
//   * ContainmentWithPremise/k — end-to-end q ⊑p q' with premises on
//                            both sides.
//   * AnswerWithPremise/n  — evaluation cost of a premise query vs its
//                            expansion, over growing databases.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "query/answer.h"
#include "query/containment.h"
#include "query/premise.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

void BM_OmegaGrowthPremise(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Query q;
  Term t = dict.Iri("t");
  Term s = dict.Iri("s");
  q.body.Insert(dict.Var("X"), dict.Iri("q"), dict.Var("Y"));
  q.body.Insert(dict.Var("Y"), t, s);
  q.head = Graph{Triple(dict.Var("X"), dict.Iri("p"), dict.Var("Y"))};
  for (uint32_t i = 0; i < m; ++i) {
    q.premise.Insert(dict.Iri(NumberedName("a", i)), t, s);
  }
  size_t omega_size = 0;
  for (auto _ : state) {
    Result<std::vector<Query>> omega = EliminatePremise(q);
    omega_size = omega.ok() ? omega->size() : 0;
    benchmark::DoNotOptimize(omega);
  }
  state.counters["|P|"] = m;
  state.counters["|Omega|"] = static_cast<double>(omega_size);
}
BENCHMARK(BM_OmegaGrowthPremise)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_OmegaGrowthBody(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Query q;
  Term t = dict.Iri("t");
  Term s = dict.Iri("s");
  // k independent premise-matchable triples: every subset R matches.
  Graph head;
  for (uint32_t i = 0; i < k; ++i) {
    Term v = dict.Var(NumberedName("Y", i));
    q.body.Insert(v, t, s);
    head.Insert(v, dict.Iri("p"), s);
  }
  q.head = head;
  q.premise.Insert(dict.Iri("a"), t, s);
  q.premise.Insert(dict.Iri("b"), t, s);
  size_t omega_size = 0;
  for (auto _ : state) {
    Result<std::vector<Query>> omega = EliminatePremise(q);
    omega_size = omega.ok() ? omega->size() : 0;
    benchmark::DoNotOptimize(omega);
  }
  state.counters["|B|"] = k;
  state.counters["|Omega|"] = static_cast<double>(omega_size);
}
BENCHMARK(BM_OmegaGrowthBody)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_ContainmentWithPremise(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Term t = dict.Iri("t");
  Term s = dict.Iri("s");
  Query q;
  Graph head;
  for (uint32_t i = 0; i < k; ++i) {
    Term v = dict.Var(NumberedName("Y", i));
    q.body.Insert(v, t, s);
    head.Insert(v, dict.Iri("p"), s);
  }
  q.head = head;
  q.premise.Insert(dict.Iri("a"), t, s);
  // q' is the generalization without premise.
  Query q_prime = q;
  q_prime.premise = Graph();
  for (auto _ : state) {
    Result<bool> r = ContainedStandardSimple(q, q_prime, &dict);
    benchmark::DoNotOptimize(r);
  }
  state.counters["|B|"] = k;
}
BENCHMARK(BM_ContainmentWithPremise)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_AnswerWithPremise(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(61);
  RandomGraphSpec spec;
  spec.num_nodes = n;
  spec.num_triples = 3 * n;
  spec.num_predicates = 2;
  spec.blank_ratio = 0;
  Graph db = RandomSimpleGraph(spec, &dict, &rng);
  Query q;
  q.body.Insert(dict.Var("X"), dict.Iri("urn:p0"), dict.Var("Y"));
  q.body.Insert(dict.Var("Y"), dict.Iri("hyp"), dict.Iri("s"));
  q.head = Graph{Triple(dict.Var("X"), dict.Iri("sel"), dict.Var("Y"))};
  // Premise declares a handful of nodes as hypothetically marked.
  for (int i = 0; i < 5; ++i) {
    q.premise.Insert(dict.Iri(NumberedName("urn:n", i)),
                     dict.Iri("hyp"), dict.Iri("s"));
  }
  QueryEvaluator eval(&dict);
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
    answers = pre.ok() ? pre->size() : 0;
    benchmark::DoNotOptimize(pre);
  }
  state.counters["|D|"] = static_cast<double>(db.size());
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_AnswerWithPremise)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
