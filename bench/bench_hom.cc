// E13 — homomorphism kernel: the dense-binding matcher vs the legacy
// map-based backtracker it replaced.
//
// The `Legacy` series reimplements, inside this file, the pre-rewrite
// algorithm faithfully enough to price its costs:
//   * TermMap (unordered_map) bindings with per-position hash lookups,
//   * a linear std::find over used blank values for injectivity,
//   * O(pending²) most-constrained-first selection by capped scanning,
//   * a materialized std::vector<Triple> of candidates per search node,
//   * no OSP index: object-bound lookups fall back to a full scan and
//     (s,?,o) lookups to an s-range scan with a filter.
// The `New` series runs the production PatternMatcher on the identical
// workload and exports its MatchStats as benchmark counters.
//
// Series reported (one Legacy/New pair each):
//   * CliqueRefuted/k    — enc(K_k) ⊨ enc(K_{k+1}): exhaustive refusal.
//   * CliqueIntoSelf/k   — enc(K_k) → enc(K_k): satisfiable search.
//   * OddCycle/n         — enc(C_{2n+1}) → enc(K3): 3-coloring gadget.
//   * CoreFold/n         — enc(C_{2n}) → itself minus one triple: the
//                          proper-endomorphism probe of core computation.
//   * ObjectBoundStar/n  — object-constant pattern over a wide graph:
//                          the osp-index case (legacy: full scan).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graphtheory/digraph.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/str.h"

namespace swdb {
namespace {

// ---------------------------------------------------------------------
// Legacy matcher (pre-rewrite algorithm, reconstructed for comparison).
// ---------------------------------------------------------------------
class LegacyMatcher {
 public:
  LegacyMatcher(const Graph& pattern, const Graph* target,
                MatchOptions options)
      : target_(target), options_(std::move(options)) {
    pending_.assign(pattern.begin(), pattern.end());
  }

  bool FindAny() {
    steps_ = 0;
    binding_ = TermMap();
    used_blank_values_.clear();
    bool found = false;
    Search(0, &found);
    return found;
  }

 private:
  static bool NeedsBinding(Term t) { return t.kind() != TermKind::kIri; }

  std::optional<Term> Resolve(Term t) const {
    if (!NeedsBinding(t)) return t;
    if (binding_.IsBound(t)) return binding_.Apply(t);
    return std::nullopt;
  }

  // Pre-OSP index emulation: only s-prefix, p, and (p,o) lookups hit an
  // index; object-only goes through a full scan and (s,?,o) filters the
  // s-range.
  template <typename Visitor>
  void ForEachCandidate(const Triple& pt, Visitor&& visitor) const {
    std::optional<Term> s = Resolve(pt.s);
    std::optional<Term> p = Resolve(pt.p);
    std::optional<Term> o = Resolve(pt.o);
    auto filtered = [&](const Triple& t) {
      if (s && t.s != *s) return true;
      if (p && t.p != *p) return true;
      if (o && t.o != *o) return true;
      return visitor(t);
    };
    if (s) {
      target_->Match(s, p, std::nullopt, filtered);
    } else if (p) {
      target_->Match(std::nullopt, p, o, filtered);
    } else {
      target_->Match(std::nullopt, std::nullopt, std::nullopt, filtered);
    }
  }

  size_t CountCapped(const Triple& pt, size_t cap) const {
    size_t count = 0;
    ForEachCandidate(pt, [&](const Triple&) { return ++count < cap; });
    return count;
  }

  // O(pending²) total work per node: every open triple is re-counted.
  size_t PickBest(size_t depth) {
    size_t best = depth;
    size_t best_count = static_cast<size_t>(-1);
    for (size_t i = depth; i < pending_.size(); ++i) {
      size_t count = CountCapped(pending_[i], best_count);
      if (count < best_count) {
        best_count = count;
        best = i;
        if (count == 0) break;
      }
    }
    return best;
  }

  bool TryBindPosition(Term pt, Term tt, std::vector<Term>* bound_here) {
    if (!NeedsBinding(pt)) return pt == tt;
    if (binding_.IsBound(pt)) return binding_.Apply(pt) == tt;
    if (pt.kind() == TermKind::kBlank) {
      if (options_.blanks_to_blanks_only && tt.kind() != TermKind::kBlank) {
        return false;
      }
      if (options_.injective_blanks) {
        if (std::find(used_blank_values_.begin(), used_blank_values_.end(),
                      tt) != used_blank_values_.end()) {
          return false;
        }
        used_blank_values_.push_back(tt);
      }
    }
    binding_.Bind(pt, tt);
    bound_here->push_back(pt);
    return true;
  }

  void Undo(const std::vector<Term>& bound_here) {
    for (Term t : bound_here) {
      if (options_.injective_blanks && t.kind() == TermKind::kBlank) {
        Term image = binding_.Apply(t);
        auto it = std::find(used_blank_values_.begin(),
                            used_blank_values_.end(), image);
        if (it != used_blank_values_.end()) used_blank_values_.erase(it);
      }
      binding_.Unbind(t);
    }
  }

  void Search(size_t depth, bool* found) {
    if (++steps_ > options_.max_steps) {
      exhausted_ = true;
      return;
    }
    if (depth == pending_.size()) {
      *found = true;
      return;
    }
    size_t pick = PickBest(depth);
    std::swap(pending_[depth], pending_[pick]);
    const Triple& pt = pending_[depth];
    // Per-node heap allocation, exactly as the old inner loop did.
    std::vector<Triple> candidates;
    ForEachCandidate(pt, [&](const Triple& t) {
      candidates.push_back(t);
      return true;
    });
    for (const Triple& cand : candidates) {
      if (options_.exclude_triple && cand == *options_.exclude_triple) {
        continue;
      }
      std::vector<Term> bound_here;
      if (TryBindPosition(pt.s, cand.s, &bound_here) &&
          TryBindPosition(pt.p, cand.p, &bound_here) &&
          TryBindPosition(pt.o, cand.o, &bound_here)) {
        Search(depth + 1, found);
      }
      Undo(bound_here);
      if (*found || exhausted_) break;
    }
    std::swap(pending_[depth], pending_[pick]);
  }

  const Graph* target_;
  MatchOptions options_;
  std::vector<Triple> pending_;
  TermMap binding_;
  std::vector<Term> used_blank_values_;
  uint64_t steps_ = 0;
  bool exhausted_ = false;
};

// ---------------------------------------------------------------------
// Workload builders.
// ---------------------------------------------------------------------
struct Workload {
  Dictionary dict;
  Graph pattern;
  Graph target;
  MatchOptions options;
};

Workload CliqueRefuted(uint32_t k) {
  Workload w;
  Term e = w.dict.Iri("e");
  w.target = EncodeAsRdf(Digraph::CompleteSymmetric(k), &w.dict, e);
  w.pattern = EncodeAsRdf(Digraph::CompleteSymmetric(k + 1), &w.dict, e);
  w.options.max_steps = 500'000'000;
  return w;
}

Workload CliqueIntoSelf(uint32_t k) {
  Workload w;
  Term e = w.dict.Iri("e");
  w.target = EncodeAsRdf(Digraph::CompleteSymmetric(k), &w.dict, e);
  w.pattern = EncodeAsRdf(Digraph::CompleteSymmetric(k), &w.dict, e);
  return w;
}

Workload OddCycle(uint32_t n) {
  Workload w;
  Term e = w.dict.Iri("e");
  w.target = EncodeAsRdf(Digraph::CompleteSymmetric(3), &w.dict, e);
  w.pattern = EncodeAsRdf(Digraph::SymmetricCycle(2 * n + 1), &w.dict, e);
  return w;
}

Workload CoreFold(uint32_t n) {
  Workload w;
  Term e = w.dict.Iri("e");
  w.target = EncodeAsRdf(Digraph::SymmetricCycle(2 * n), &w.dict, e);
  w.pattern = w.target;
  w.options.exclude_triple = *w.target.begin();
  return w;
}

Workload ObjectBoundStar(uint32_t n) {
  Workload w;
  // A wide haystack where only object-bound lookups are selective.
  for (uint32_t i = 0; i < n; ++i) {
    w.target.Insert(w.dict.Iri(NumberedName("s", i)),
                    w.dict.Iri(NumberedName("p", i % 7)),
                    w.dict.Iri(NumberedName("t", i)));
  }
  Term hub = w.dict.Iri("hub");
  w.target.Insert(hub, w.dict.Iri("p0"), w.dict.Iri("needle1"));
  w.target.Insert(hub, w.dict.Iri("p1"), w.dict.Iri("needle2"));
  // Both triples bind only through their constant objects.
  w.pattern.Insert(w.dict.Var("X"), w.dict.Var("P"),
                   w.dict.Iri("needle1"));
  w.pattern.Insert(w.dict.Var("X"), w.dict.Var("Q"),
                   w.dict.Iri("needle2"));
  return w;
}

void RunLegacy(benchmark::State& state, Workload w) {
  for (auto _ : state) {
    LegacyMatcher matcher(w.pattern, &w.target, w.options);
    benchmark::DoNotOptimize(matcher.FindAny());
  }
}

void RunNew(benchmark::State& state, Workload w) {
  MatchStats stats;
  w.options.stats = &stats;
  for (auto _ : state) {
    PatternMatcher matcher(w.pattern, &w.target, w.options);
    Result<std::optional<TermMap>> r = matcher.FindAny();
    benchmark::DoNotOptimize(r);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes_expanded);
  state.counters["cands"] = static_cast<double>(stats.candidates_scanned);
  state.counters["steps"] = static_cast<double>(stats.steps_used);
  state.counters["recomputes"] =
      static_cast<double>(stats.selectivity_recomputes);
}

void BM_CliqueRefutedLegacy(benchmark::State& state) {
  RunLegacy(state, CliqueRefuted(static_cast<uint32_t>(state.range(0))));
}
void BM_CliqueRefutedNew(benchmark::State& state) {
  RunNew(state, CliqueRefuted(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_CliqueRefutedLegacy)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_CliqueRefutedNew)->Arg(3)->Arg(4)->Arg(5);

void BM_CliqueIntoSelfLegacy(benchmark::State& state) {
  RunLegacy(state, CliqueIntoSelf(static_cast<uint32_t>(state.range(0))));
}
void BM_CliqueIntoSelfNew(benchmark::State& state) {
  RunNew(state, CliqueIntoSelf(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_CliqueIntoSelfLegacy)->Arg(6)->Arg(8);
BENCHMARK(BM_CliqueIntoSelfNew)->Arg(6)->Arg(8);

void BM_OddCycleLegacy(benchmark::State& state) {
  RunLegacy(state, OddCycle(static_cast<uint32_t>(state.range(0))));
}
void BM_OddCycleNew(benchmark::State& state) {
  RunNew(state, OddCycle(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_OddCycleLegacy)->Arg(20)->Arg(80);
BENCHMARK(BM_OddCycleNew)->Arg(20)->Arg(80);

void BM_CoreFoldLegacy(benchmark::State& state) {
  RunLegacy(state, CoreFold(static_cast<uint32_t>(state.range(0))));
}
void BM_CoreFoldNew(benchmark::State& state) {
  RunNew(state, CoreFold(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_CoreFoldLegacy)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_CoreFoldNew)->Arg(8)->Arg(16)->Arg(32);

void BM_ObjectBoundStarLegacy(benchmark::State& state) {
  RunLegacy(state, ObjectBoundStar(static_cast<uint32_t>(state.range(0))));
}
void BM_ObjectBoundStarNew(benchmark::State& state) {
  RunNew(state, ObjectBoundStar(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_ObjectBoundStarLegacy)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ObjectBoundStarNew)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
