// E20 — batched multi-query evaluation over one snapshot.
//
// Prices the batch PR on a 64-query overlapping mix at N triples: 8
// families × 8 variants, each family sharing a selective 2-triple join
// prefix over its family predicates, variants differing in a 1-triple
// residual suffix over the bulk predicates, and 2 of the 8 variants
// (25%) exact variable-respellings of earlier ones (ViewKey-isomorphic,
// deduped by the batch path). Views are disabled for every series so
// the numbers isolate dedupe + trie sharing from caching.
//
//   * SequentialReplay/N     — the baseline the acceptance ratios
//                              divide by: 64 independent PreAnswer
//                              calls per iteration.
//   * BatchedSingleThread/N  — PreAnswerBatch, no pool: isomorphic
//                              dedupe + shared-prefix trie only.
//   * BatchedPooled/N/t      — PreAnswerBatch with trie root subtrees
//                              fanned over a t-worker pool.
//
// Acceptance is read off N = 100k: BatchedSingleThread must be >= 1.5x
// SequentialReplay, and BatchedPooled >= 3x on hosts with >= 8 cores
// (scripts/bench_batch.sh records the core count; like E15, the scaling
// check is skipped where the hardware cannot express it).

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "query/batch.h"
#include "query/database.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

Term Subj(uint32_t i) { return Term::Iri(vocab::kReservedIris + i); }
Term Pred(uint32_t i) { return Term::Iri(1u << 20 | i); }

constexpr uint32_t kBulkPreds = 8;    // suffix predicates, ~N/8 each
constexpr uint32_t kFamilies = 8;     // one selective pred pair each
constexpr uint32_t kVariants = 8;     // per family; 2 are respellings
constexpr uint32_t kPrefixBase = 16;  // prefix preds: Pred(16..31)

// Two node pools shape the workload so the shared prefix join is the
// expensive part of every query and the suffix filters hard:
//
//   * a small pool (n/64 nodes) carries the per-family selective
//     predicate layers Pred(16+2f), Pred(17+2f) — the join over them
//     (~|layer|²/|small|) is what every variant of a family re-derives
//     sequentially and the trie enumerates once;
//   * a large pool (2n nodes) receives the join's C-ends and the bulk
//     triples' subjects, so only a small fraction of prefix bindings
//     survive any variant's suffix probe — answers stay cheap relative
//     to prefix enumeration.
//
// Selective counts (~n/33 per layer, vs ~n/8 per bulk predicate) keep
// the static most-constrained-first order starting every variant's body
// with the same two prefix triples, which is what the trie aligns on.
std::vector<Triple> MakeTriples(size_t n) {
  std::mt19937 rng(20260808);
  const uint32_t small = static_cast<uint32_t>(n / 64 + 1);
  const uint32_t big = static_cast<uint32_t>(2 * n + 1);
  const uint32_t big_base = small;
  const size_t per_family = n / 33;
  std::vector<Triple> v;
  v.reserve(n + 2 * kFamilies * per_family);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(Triple(Subj(big_base + rng() % big), Pred(rng() % kBulkPreds),
                       Subj(big_base + rng() % big)));
  }
  for (uint32_t f = 0; f < kFamilies; ++f) {
    for (size_t i = 0; i < per_family; ++i) {
      v.push_back(Triple(Subj(rng() % small), Pred(kPrefixBase + 2 * f),
                         Subj(rng() % small)));
      v.push_back(Triple(Subj(rng() % small), Pred(kPrefixBase + 2 * f + 1),
                         Subj(big_base + rng() % big)));
    }
  }
  return v;
}

// Variant v of family f:
//   body: ?A PP(2f) ?B . ?B PP(2f+1) ?C . ?C Pbulk((f+v)%8) ?D .
//   head: ?A r ?D
// with var ids shifted by `shift` (respellings reuse an earlier v with
// a different shift — same shape, different spelling).
Query FamilyQuery(uint32_t f, uint32_t v, uint32_t shift) {
  const Term a = Term::Var(shift), b = Term::Var(shift + 1),
             c = Term::Var(shift + 2), d = Term::Var(shift + 3);
  Query q;
  q.body = Graph({Triple(a, Pred(kPrefixBase + 2 * f), b),
                  Triple(b, Pred(kPrefixBase + 2 * f + 1), c),
                  Triple(c, Pred((f + v) % kBulkPreds), d)});
  q.head = Graph({Triple(a, Pred(kPrefixBase + 2 * kFamilies), d)});
  return q;
}

// The 64-query mix: variants 0..5 fresh, 6 and 7 respellings of 0 and 1.
std::vector<Query> OverlappingMix() {
  std::vector<Query> out;
  out.reserve(kFamilies * kVariants);
  for (uint32_t f = 0; f < kFamilies; ++f) {
    for (uint32_t v = 0; v < kVariants; ++v) {
      const uint32_t base = v < 6 ? v : v - 6;
      const uint32_t shift = v < 6 ? 0 : 100 + 4 * v;
      out.push_back(FamilyQuery(f, base, shift));
    }
  }
  return out;
}

// One prebuilt, nf-warmed Database per (series, n): setup cost is paid
// once, not per iteration. Terms are minted by bits; the dictionary
// only backs fresh-blank minting, which this workload never does.
Database* SetupDb(const std::string& tag, size_t n, ThreadPool* pool) {
  static std::map<std::string, std::unique_ptr<Database>>* dbs =
      new std::map<std::string, std::unique_ptr<Database>>();
  static Dictionary* dict = new Dictionary();
  const std::string key = tag + "/" + std::to_string(n);
  auto it = dbs->find(key);
  if (it == dbs->end()) {
    EvalOptions opts;
    opts.views.enabled = false;  // isolate dedupe + trie sharing
    opts.match.pool = pool;
    it = dbs->emplace(key, std::make_unique<Database>(dict, opts)).first;
    it->second->InsertGraph(Graph(MakeTriples(n)));
    (void)it->second->Normalized();  // closure + nf built outside timing
  }
  return it->second.get();
}

void SequentialReplay(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database* db = SetupDb("seq", n, nullptr);
  const std::vector<Query> mix = OverlappingMix();
  size_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (const Query& q : mix) {
      Result<std::vector<Graph>> pre = db->PreAnswer(q);
      answers += pre.ok() ? pre->size() : 0;
    }
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["queries"] = static_cast<double>(mix.size());
  state.SetItemsProcessed(state.iterations() * mix.size());
}
BENCHMARK(SequentialReplay)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BatchedSingleThread(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database* db = SetupDb("batch1", n, nullptr);
  const std::vector<Query> mix = OverlappingMix();
  size_t answers = 0;
  BatchStats stats;
  for (auto _ : state) {
    answers = 0;
    std::vector<Result<std::vector<Graph>>> results =
        db->PreAnswerBatch(mix, &stats);
    for (const auto& r : results) answers += r.ok() ? r->size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["deduped"] = static_cast<double>(stats.deduped);
  state.counters["trie_groups"] = static_cast<double>(stats.trie_groups);
  state.counters["prefix_hits"] = static_cast<double>(stats.prefix_hits);
  state.counters["shared_reused"] =
      static_cast<double>(stats.shared_bindings_reused);
  state.SetItemsProcessed(state.iterations() * mix.size());
}
BENCHMARK(BatchedSingleThread)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BatchedPooled(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  static std::map<int, std::unique_ptr<ThreadPool>>* pools =
      new std::map<int, std::unique_ptr<ThreadPool>>();
  auto it = pools->find(workers);
  if (it == pools->end()) {
    it = pools->emplace(workers, std::make_unique<ThreadPool>(workers)).first;
  }
  Database* db =
      SetupDb("pool" + std::to_string(workers), n, it->second.get());
  const std::vector<Query> mix = OverlappingMix();
  size_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    std::vector<Result<std::vector<Graph>>> results = db->PreAnswerBatch(mix);
    for (const auto& r : results) answers += r.ok() ? r->size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["threads"] = static_cast<double>(workers);
  state.SetItemsProcessed(state.iterations() * mix.size());
}
BENCHMARK(BatchedPooled)
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
