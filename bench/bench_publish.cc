// E18 — delta-proportional snapshot publication.
//
// Prices the COW spine publication path against an in-file
// reconstruction of the pre-COW layout, where publishing a snapshot
// deep-copied the primary std::vector<Triple> plus the 4 permutation
// indexes' 12 uint32 columns.
//
// Series:
//   * PublishCowCopy/N        — copying a warmed Graph: shared_ptr leaf
//                               sharing, O(leaf-count) pointer copies.
//   * PublishFullCopyBaseline/N — the pre-COW cost: byte-copy every
//                               row and every index column.
//   * InsertAndPublish/N      — end-to-end Database::Insert with
//                               snapshots on: one triple, closure
//                               maintenance, republication. Exports the
//                               leaves-shared / leaves-copied counters,
//                               the direct measure of
//                               delta-proportionality.
//
// The acceptance criterion of the PR is read off the first two series
// at N = 1M: PublishCowCopy must be >= 10x cheaper than
// PublishFullCopyBaseline.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "query/database.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace swdb {
namespace {

Term Subj(uint32_t i) { return Term::Iri(vocab::kReservedIris + i); }
Term Pred(uint32_t i) { return Term::Iri(1u << 20 | i); }
Term Obj(uint32_t i) { return Term::Iri(2u << 20 | i); }

constexpr uint32_t kPreds = 16;

std::vector<Triple> MakeTriples(size_t n) {
  std::mt19937 rng(20260808);
  std::vector<Triple> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Distinct by construction (o carries i), uniformly spread so spine
    // leaves fill evenly in every permutation.
    v.push_back(Triple(Subj(rng() % (n / 8 + 1)), Pred(rng() % kPreds),
                       Obj(static_cast<uint32_t>(i))));
  }
  return v;
}

const Graph& WarmedGraph(size_t n) {
  static std::map<size_t, Graph>* cache = new std::map<size_t, Graph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, Graph(MakeTriples(n))).first;
    it->second.WarmIndexes();
  }
  return it->second;
}

void PublishCowCopy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Graph& g = WarmedGraph(n);
  for (auto _ : state) {
    auto snap = std::make_shared<Graph>(g);
    snap->WarmIndexes();  // no-op: the copy inherits built indexes
    benchmark::DoNotOptimize(snap->size());
  }
  const GraphStats gs = g.Stats();
  state.counters["leaves"] =
      static_cast<double>(gs.leaves_primary + gs.leaves_index);
  state.counters["bytes_shared"] = static_cast<double>(gs.bytes_total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(PublishCowCopy)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// The pre-COW publication: a primary AoS vector plus 4 sorted
// permutations as 3 uint32 columns each, all deep-copied per snapshot.
void PublishFullCopyBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Graph& g = WarmedGraph(n);
  std::vector<Triple> rows(g.begin(), g.end());
  std::vector<std::vector<uint32_t>> cols(12);
  for (auto& c : cols) {
    c.reserve(n);
  }
  for (const Triple& t : rows) {
    // The exact column values are irrelevant to copy cost; the layout
    // (12 columns of n uint32s) is what is being priced.
    for (int k = 0; k < 4; ++k) {
      cols[3 * k + 0].push_back(t.s.bits());
      cols[3 * k + 1].push_back(t.p.bits());
      cols[3 * k + 2].push_back(t.o.bits());
    }
  }
  for (auto _ : state) {
    std::vector<Triple> rows_copy = rows;
    benchmark::DoNotOptimize(rows_copy.data());
    for (const auto& c : cols) {
      std::vector<uint32_t> col_copy = c;
      benchmark::DoNotOptimize(col_copy.data());
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(n * (sizeof(Triple) + 12 * sizeof(uint32_t))));
}
BENCHMARK(PublishFullCopyBaseline)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// End to end: one writer triple -> maintained closure delta -> snapshot
// republication, with the COW sharing counters exported.
void InsertAndPublish(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::unique_ptr<Database>>* dbs =
      new std::map<size_t, std::unique_ptr<Database>>();
  static Dictionary* dict = new Dictionary();
  auto it = dbs->find(n);
  if (it == dbs->end()) {
    it = dbs->emplace(n, std::make_unique<Database>(dict)).first;
    it->second->InsertGraph(Graph(MakeTriples(n)));
    (void)it->second->Snapshot();  // turn publication on
  }
  Database& db = *it->second;
  db.ResetStats();
  uint32_t next = 3u << 20;
  for (auto _ : state) {
    db.Insert(Triple(Subj(0), Pred(next % kPreds), Term::Iri(next)));
    ++next;
    benchmark::DoNotOptimize(db.Snapshot());
  }
  const DatabaseStats stats = db.stats();
  const double publishes =
      static_cast<double>(stats.snapshot_publishes.load());
  state.counters["publishes"] = publishes;
  state.counters["leaves_shared_per_publish"] =
      static_cast<double>(stats.publish_leaves_shared.load()) /
      (publishes > 0 ? publishes : 1);
  state.counters["leaves_copied_per_publish"] =
      static_cast<double>(stats.publish_leaves_copied.load()) /
      (publishes > 0 ? publishes : 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(InsertAndPublish)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
