// E10 — §4.1, Prop. 4.5 / Thm 4.6: answer semantics. Union answers are
// invariant under database equivalence when matching is done against
// nf(D); matching against the raw closure is cheaper but syntax
// dependent. Union answers always entail merge answers.
//
// Series reported:
//   * NfEvaluation/n       — evaluation against nf(D + P).
//   * ClosureEvaluation/n  — evaluation against RDFS-cl(D + P).
//   * InvarianceNf/n       — iso-rate of answers across equivalent
//                            database mutations, nf mode (must be 1.0).
//   * InvarianceClosure/n  — same in closure mode (drops below 1.0).
//   * UnionVsMerge/n       — ans∪ vs ans+ sizes and the entailment
//                            check between them.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "query/answer.h"
#include "rdf/iso.h"
#include "util/rng.h"

namespace swdb {
namespace {

Graph MakeSchemaDb(uint32_t n, Dictionary* dict, uint64_t seed) {
  Rng rng(seed);
  SchemaWorkloadSpec spec;
  spec.num_classes = n / 5 + 2;
  spec.num_properties = n / 8 + 2;
  spec.num_instances = n;
  spec.num_facts = 2 * n;
  spec.blank_instance_ratio = 0.2;
  return SchemaWorkload(spec, dict, &rng);
}

Query TypeQuery(Dictionary* dict) {
  Query q;
  q.body.Insert(dict->Var("X"), vocab::kType, dict->Var("C"));
  q.head = q.body;
  return q;
}

void BM_NfEvaluation(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph db = MakeSchemaDb(n, &dict, 71);
  Query q = TypeQuery(&dict);
  QueryEvaluator eval(&dict);
  for (auto _ : state) {
    Result<Graph> ans = eval.AnswerUnion(q, db);
    benchmark::DoNotOptimize(ans);
  }
  state.counters["|D|"] = static_cast<double>(db.size());
}
BENCHMARK(BM_NfEvaluation)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_ClosureEvaluation(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph db = MakeSchemaDb(n, &dict, 71);
  Query q = TypeQuery(&dict);
  EvalOptions options;
  options.use_closure_only = true;
  QueryEvaluator eval(&dict, options);
  for (auto _ : state) {
    Result<Graph> ans = eval.AnswerUnion(q, db);
    benchmark::DoNotOptimize(ans);
  }
  state.counters["|D|"] = static_cast<double>(db.size());
}
BENCHMARK(BM_ClosureEvaluation)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void InvarianceRun(benchmark::State& state, bool closure_only) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Rng rng(73);
  Graph db = MakeSchemaDb(n, &dict, 79);
  Query q = TypeQuery(&dict);
  EvalOptions options;
  options.use_closure_only = closure_only;
  QueryEvaluator eval(&dict, options);
  Result<Graph> baseline = eval.AnswerUnion(q, db);
  double iso_hits = 0;
  double rounds = 0;
  for (auto _ : state) {
    Graph mutated = EquivalentMutation(db, 2, &dict, &rng);
    Result<Graph> ans = eval.AnswerUnion(q, mutated);
    bool iso = baseline.ok() && ans.ok() && AreIsomorphic(*baseline, *ans);
    iso_hits += iso ? 1 : 0;
    rounds += 1;
    benchmark::DoNotOptimize(ans);
  }
  state.counters["iso_rate"] = rounds > 0 ? iso_hits / rounds : 0;
}

void BM_InvarianceNf(benchmark::State& state) {
  InvarianceRun(state, /*closure_only=*/false);
}
BENCHMARK(BM_InvarianceNf)->Arg(10)->Arg(20)->Arg(40);

void BM_InvarianceClosure(benchmark::State& state) {
  InvarianceRun(state, /*closure_only=*/true);
}
BENCHMARK(BM_InvarianceClosure)->Arg(10)->Arg(20)->Arg(40);

void BM_UnionVsMerge(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph db = MakeSchemaDb(n, &dict, 83);
  Query q = TypeQuery(&dict);
  QueryEvaluator eval(&dict);
  size_t union_size = 0;
  size_t merge_size = 0;
  bool entails = false;
  for (auto _ : state) {
    Result<Graph> u = eval.AnswerUnion(q, db);
    Result<Graph> m = eval.AnswerMerge(q, db);
    union_size = u.ok() ? u->size() : 0;
    merge_size = m.ok() ? m->size() : 0;
    entails = u.ok() && m.ok() && RdfsEntails(*u, *m);
    benchmark::DoNotOptimize(entails);
  }
  state.counters["|ans_union|"] = static_cast<double>(union_size);
  state.counters["|ans_merge|"] = static_cast<double>(merge_size);
  state.counters["union_entails_merge"] = entails ? 1 : 0;
}
BENCHMARK(BM_UnionVsMerge)->Arg(10)->Arg(20)->Arg(40);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
