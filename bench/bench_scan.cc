// E17 — columnar triple storage and vectorized candidate scans.
//
// Prices the SoA refactor of the permutation indexes (graph.h) and the
// scan kernels behind it (scan.h) against an in-file reconstruction of
// the pre-refactor AoS layout: a primary std::vector<Triple> plus a
// permutation id vector sorted by (p,s,o), where every residual filter
// gathers 12-byte Triple structs through the id indirection.
//
// Series (AoS baseline / columnar / scalar-kernel ablation):
//   * ResidualScan*   — p-run residual filter "object == key": the
//                       bound-position scan the acceptance criterion
//                       targets, at ~1M triples.
//   * PairEq*         — diagonal residual "s == o" over a p-run (the
//                       repeated-slot pattern (X, p, X)).
//   * Lookup*         — two-key (p, o) equal-range resolution: id-vector
//                       binary search with struct gathers vs
//                       scan::SortedEqualRange on contiguous columns.
//   * MatchesResidual — end-to-end Graph::Matches + FilterBound, with
//                       GraphStats exported as counters.
//   * RepeatedSlot*   — PatternMatcher on (X, p, X): iterate-and-reject
//                       vs the FilterPairEqual fast path it now uses.
//
// Every columnar series also reports the dispatched kernel ("avx2",
// "sse2" or "scalar") via SetLabel, so BENCH_scan.json records which
// code path produced the numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/scan.h"
#include "rdf/term.h"

namespace swdb {
namespace {

constexpr size_t kTriples = 1u << 20;  // ~1.05M rows
constexpr uint32_t kPreds = 16;        // p-run ≈ 65k rows
constexpr uint32_t kSubjects = 1u << 16;
constexpr uint32_t kObjects = 1u << 10;  // small universe → residual hits

Term Subj(uint32_t i) { return Term::Iri(vocab::kReservedIris + i); }
Term Pred(uint32_t i) { return Term::Iri(1u << 20 | i); }
Term Obj(uint32_t i) { return Term::Iri(2u << 20 | i); }

struct Fixture {
  Graph g;
  // AoS mirror of the pre-refactor layout.
  std::vector<Triple> triples;   // primary, sorted (s,p,o)
  std::vector<uint32_t> pso_ids;  // ids sorted by (p,s,o)
  std::vector<uint32_t> pos_ids;  // ids sorted by (p,o,s) — two-key lookups
  // The same permutation as contiguous columns, for kernel-level
  // ablations that bypass Graph's encapsulated indexes.
  std::vector<uint32_t> col_p, col_s, col_o;
  size_t run_lo = 0, run_hi = 0;  // Pred(0)'s run in pso order
};

const Fixture& F() {
  static const Fixture fx = [] {
    std::mt19937 rng(20260808);
    std::vector<Triple> v;
    v.reserve(kTriples);
    for (size_t i = 0; i < kTriples; ++i) {
      const Term s = Subj(rng() % kSubjects);
      const Term p = Pred(rng() % kPreds);
      // ~3% diagonal rows so the pair-equality series has survivors.
      const Term o = (rng() % 32 == 0) ? s : Obj(rng() % kObjects);
      v.push_back(Triple(s, p, o));
    }
    Fixture f;
    f.g = Graph(std::move(v));
    f.g.WarmIndexes();
    f.triples = f.g.triples();
    f.pso_ids.resize(f.triples.size());
    for (uint32_t i = 0; i < f.pso_ids.size(); ++i) f.pso_ids[i] = i;
    std::sort(f.pso_ids.begin(), f.pso_ids.end(),
              [&](uint32_t a, uint32_t b) {
                const Triple& x = f.triples[a];
                const Triple& y = f.triples[b];
                if (x.p != y.p) return x.p < y.p;
                if (x.s != y.s) return x.s < y.s;
                return x.o < y.o;
              });
    f.pos_ids = f.pso_ids;
    std::sort(f.pos_ids.begin(), f.pos_ids.end(),
              [&](uint32_t a, uint32_t b) {
                const Triple& x = f.triples[a];
                const Triple& y = f.triples[b];
                if (x.p != y.p) return x.p < y.p;
                if (x.o != y.o) return x.o < y.o;
                return x.s < y.s;
              });
    f.col_p.reserve(f.pso_ids.size());
    f.col_s.reserve(f.pso_ids.size());
    f.col_o.reserve(f.pso_ids.size());
    for (uint32_t id : f.pso_ids) {
      f.col_p.push_back(f.triples[id].p.bits());
      f.col_s.push_back(f.triples[id].s.bits());
      f.col_o.push_back(f.triples[id].o.bits());
    }
    const uint32_t key = Pred(0).bits();
    f.run_lo = std::lower_bound(f.col_p.begin(), f.col_p.end(), key) -
               f.col_p.begin();
    f.run_hi = std::upper_bound(f.col_p.begin(), f.col_p.end(), key) -
               f.col_p.begin();
    return f;
  }();
  return fx;
}

// --- Bound-position residual scan over a p-run -----------------------

void BM_ResidualScanAoS(benchmark::State& state) {
  const Fixture& f = F();
  const uint32_t key = Obj(7).bits();
  std::vector<uint32_t> out;
  size_t hits = 0;
  for (auto _ : state) {
    out.clear();
    for (size_t i = f.run_lo; i < f.run_hi; ++i) {
      if (f.triples[f.pso_ids[i]].o.bits() == key) {
        out.push_back(f.pso_ids[i]);
      }
    }
    hits = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
  state.counters["run"] = static_cast<double>(f.run_hi - f.run_lo);
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_ResidualScanAoS);

void BM_ResidualScanColumnar(benchmark::State& state) {
  const Fixture& f = F();
  const uint32_t key = Obj(7).bits();
  std::vector<uint32_t> out;
  size_t hits = 0;
  for (auto _ : state) {
    out.clear();
    hits = scan::FilterEq(f.col_o.data(), f.run_lo, f.run_hi, key, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
  state.counters["run"] = static_cast<double>(f.run_hi - f.run_lo);
  state.counters["hits"] = static_cast<double>(hits);
  state.SetLabel(scan::KernelName());
}
BENCHMARK(BM_ResidualScanColumnar);

void BM_ResidualScanColumnarScalar(benchmark::State& state) {
  const Fixture& f = F();
  const uint32_t key = Obj(7).bits();
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    scan::FilterEqScalar(f.col_o.data(), f.run_lo, f.run_hi, key, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
}
BENCHMARK(BM_ResidualScanColumnarScalar);

// --- Repeated-position (diagonal) residual over a p-run --------------

void BM_PairEqAoS(benchmark::State& state) {
  const Fixture& f = F();
  std::vector<uint32_t> out;
  size_t hits = 0;
  for (auto _ : state) {
    out.clear();
    for (size_t i = f.run_lo; i < f.run_hi; ++i) {
      const Triple& t = f.triples[f.pso_ids[i]];
      if (t.s == t.o) out.push_back(f.pso_ids[i]);
    }
    hits = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_PairEqAoS);

void BM_PairEqColumnar(benchmark::State& state) {
  const Fixture& f = F();
  std::vector<uint32_t> out;
  size_t hits = 0;
  for (auto _ : state) {
    out.clear();
    hits = scan::FilterPairEq(f.col_s.data(), f.col_o.data(), f.run_lo,
                              f.run_hi, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
  state.counters["hits"] = static_cast<double>(hits);
  state.SetLabel(scan::KernelName());
}
BENCHMARK(BM_PairEqColumnar);

void BM_PairEqColumnarScalar(benchmark::State& state) {
  const Fixture& f = F();
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    scan::FilterPairEqScalar(f.col_s.data(), f.col_o.data(), f.run_lo,
                             f.run_hi, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
}
BENCHMARK(BM_PairEqColumnarScalar);

// --- Two-key (p, o) range resolution ---------------------------------

void BM_LookupAoS(benchmark::State& state) {
  const Fixture& f = F();
  uint32_t q = 0;
  size_t total = 0;
  for (auto _ : state) {
    const Term p = Pred(q % kPreds);
    const Term o = Obj(q * 2654435761u % kObjects);
    ++q;
    // The pre-refactor perm_range: equal_range over the id vector with a
    // struct-gathering two-key comparator.
    struct Cmp {
      const std::vector<Triple>* triples;
      Term p, o;
      bool operator()(uint32_t id, int) const {
        const Triple& t = (*triples)[id];
        if (t.p != p) return t.p < p;
        return t.o < o;
      }
      bool operator()(int, uint32_t id) const {
        const Triple& t = (*triples)[id];
        if (t.p != p) return p < t.p;
        return o < t.o;
      }
    };
    Cmp cmp{&f.triples, p, o};
    auto lo = std::lower_bound(f.pos_ids.begin(), f.pos_ids.end(), 0, cmp);
    auto hi = std::upper_bound(lo, f.pos_ids.end(), 0,
                               [&](int k, uint32_t id) { return cmp(k, id); });
    total += hi - lo;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_hits"] =
      static_cast<double>(total) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_LookupAoS);

void BM_LookupColumnar(benchmark::State& state) {
  const Fixture& f = F();
  uint32_t q = 0;
  size_t total = 0;
  for (auto _ : state) {
    const Term p = Pred(q % kPreds);
    const Term o = Obj(q * 2654435761u % kObjects);
    ++q;
    total += f.g.CountMatches(std::nullopt, p, o);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_hits"] =
      static_cast<double>(total) / static_cast<double>(state.iterations());
  state.SetLabel(scan::KernelName());
}
BENCHMARK(BM_LookupColumnar);

// --- End-to-end: Graph::Matches + residual FilterBound ---------------

void BM_MatchesResidual(benchmark::State& state) {
  const Fixture& f = F();
  std::vector<uint32_t> out;
  uint32_t q = 0;
  for (auto _ : state) {
    const MatchRange range =
        f.g.Matches(std::nullopt, Pred(q % kPreds), std::nullopt);
    out.clear();
    range.FilterBound(2, Obj(q * 40503u % kObjects), &out);
    ++q;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  const GraphStats st = f.g.Stats();
  state.counters["bytes_total"] = static_cast<double>(st.bytes_total());
  state.counters["bytes_cols"] = static_cast<double>(
      st.bytes_pso + st.bytes_pos + st.bytes_osp);
  state.counters["rebuilds"] = static_cast<double>(st.index_rebuilds);
  state.counters["rows_scanned"] = static_cast<double>(st.rows_scanned);
  state.counters["rows_yielded"] = static_cast<double>(st.rows_yielded);
  state.SetLabel(scan::KernelName());
}
BENCHMARK(BM_MatchesResidual);

// --- Repeated-slot pattern through the matcher -----------------------

void BM_RepeatedSlotIterate(benchmark::State& state) {
  // The pre-refactor matcher path: materialize every candidate of the
  // p-run and reject the off-diagonal ones one by one.
  const Fixture& f = F();
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    const MatchRange range =
        f.g.Matches(std::nullopt, Pred(0), std::nullopt);
    for (const Triple& t : range) {
      if (t.s == t.o) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_RepeatedSlotIterate);

void BM_RepeatedSlotMatcher(benchmark::State& state) {
  const Fixture& f = F();
  const Term x = Term::Var(0);
  std::vector<Triple> pattern = {Triple(x, Pred(0), x)};
  size_t solutions = 0;
  MatchStats stats;
  for (auto _ : state) {
    MatchOptions options;
    options.stats = &stats;
    PatternMatcher matcher(pattern, &f.g, options);
    solutions = 0;
    Status s = matcher.Enumerate([&](const TermMap&) {
      ++solutions;
      return true;
    });
    benchmark::DoNotOptimize(s.ok());
    benchmark::DoNotOptimize(solutions);
  }
  state.SetItemsProcessed(state.iterations() * (f.run_hi - f.run_lo));
  state.counters["solutions"] = static_cast<double>(solutions);
  state.counters["scanned"] = static_cast<double>(stats.candidates_scanned);
  state.counters["binds"] = static_cast<double>(stats.binds_attempted);
  state.SetLabel(scan::KernelName());
}
BENCHMARK(BM_RepeatedSlotMatcher);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
