// E2 — §2.4: the polynomial regimes of simple entailment.
//
// Series reported:
//   * DataComplexity/n       — fixed G2, growing G1 (Vardi's data
//                              complexity): polynomial in |G1|.
//   * AcyclicYannakakis/n    — blank-acyclic G2 via GYO + Yannakakis
//                              semijoins: polynomial in |G2| too.
//   * AcyclicBacktracking/n  — same instances through the generic
//                              backtracking solver, for comparison.
//   * CyclicFallback/n       — blank cycles: the acyclic method does not
//                              apply; the generic solver carries it.

#include <benchmark/benchmark.h>

#include "cq/cq.h"
#include "gen/generators.h"
#include "rdf/hom.h"
#include "util/rng.h"

namespace swdb {
namespace {

Graph MakeData(uint32_t n, Dictionary* dict, uint64_t seed) {
  Rng rng(seed);
  RandomGraphSpec spec;
  spec.num_nodes = n;
  spec.num_triples = 3 * n;
  spec.num_predicates = 2;
  spec.blank_ratio = 0;
  return RandomSimpleGraph(spec, dict, &rng);
}

void BM_DataComplexity(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g1 = MakeData(n, &dict, 3);
  Graph g2 = BlankChain(3, dict.Iri("urn:p0"), &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEntails(g1, g2));
  }
  state.counters["|G1|"] = static_cast<double>(g1.size());
}
BENCHMARK(BM_DataComplexity)->Arg(50)->Arg(200)->Arg(800)->Arg(3200);

void BM_AcyclicYannakakis(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g1 = MakeData(60, &dict, 5);
  Graph g2 = BlankChain(n, dict.Iri("urn:p0"), &dict);
  BooleanCq q = BooleanCq::FromGraph(g2);
  RelationalDb db = RelationalDb::FromGraph(g1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAcyclic(q, db));
  }
  state.counters["|G2|"] = n;
}
BENCHMARK(BM_AcyclicYannakakis)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_AcyclicBacktracking(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g1 = MakeData(60, &dict, 5);
  Graph g2 = BlankChain(n, dict.Iri("urn:p0"), &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEntails(g1, g2));
  }
  state.counters["|G2|"] = n;
}
BENCHMARK(BM_AcyclicBacktracking)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CyclicFallback(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Dictionary dict;
  Graph g1 = MakeData(60, &dict, 5);
  Graph g2 = BlankCycle(n, dict.Iri("urn:p0"), &dict);
  for (auto _ : state) {
    bool used_acyclic = false;
    benchmark::DoNotOptimize(CqSimpleEntails(g1, g2, &used_acyclic));
  }
  state.counters["|G2|"] = n;
}
BENCHMARK(BM_CyclicFallback)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace swdb

BENCHMARK_MAIN();
